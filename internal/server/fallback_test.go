package server

import (
	"errors"
	"os"
	"strings"
	"testing"

	"treesim/internal/search"
)

// These tests prove the generational-snapshot contract: every
// publication shifts the previous snapshot one generation back, and a
// restart falls back to the newest generation that still loads,
// rebuilding the rest from the write-ahead log — which is only trimmed
// below the oldest retained generation's cut, so the suffix is always
// there to replay.

// corruptFile flips one byte in the middle of path so the snapshot
// checksum fails on load.
func corruptFile(t *testing.T, path string) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
}

// truncateFile cuts path to half its size — a torn snapshot write.
func truncateFile(t *testing.T, path string) {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()/2); err != nil {
		t.Fatal(err)
	}
}

// buildGenerations publishes three snapshot generations with one insert
// between each, plus one tail insert covered only by the WAL:
//
//	gen 2: 10 base trees         gen 1: + gen1(a,b)
//	gen 0: + gen2(c,d)           WAL tail: + tail(e,f)
//
// It closes the WAL (simulating process death) and returns the config.
func buildGenerations(t *testing.T) Config {
	t.Helper()
	cfg := durableConfig(t.TempDir())
	cfg.SnapshotKeep = 3
	s, hs := startDurable(t, cfg, 10)
	insertTree(t, hs.URL, "gen1(a,b)")
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	insertTree(t, hs.URL, "gen2(c,d)")
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	insertTree(t, hs.URL, "tail(e,f)")
	s.wal.Close()
	return cfg
}

// TestSnapshotGenerationsShift: each publication renames the previous
// file one generation back, and every retained generation loads on its
// own and holds the state of its cut.
func TestSnapshotGenerationsShift(t *testing.T) {
	cfg := buildGenerations(t)
	wantSizes := []int{12, 11, 10} // gen 0 newest … gen 2 oldest
	for gen, want := range wantSizes {
		f, err := os.Open(SnapshotGeneration(cfg.SnapshotPath, gen))
		if err != nil {
			t.Fatalf("generation %d missing: %v", gen, err)
		}
		ix, err := search.LoadIndex(f)
		f.Close()
		if err != nil {
			t.Fatalf("generation %d does not load: %v", gen, err)
		}
		if ix.Size() != want {
			t.Fatalf("generation %d holds %d trees, want %d", gen, ix.Size(), want)
		}
	}
}

// TestFallbackSkipsCorruptGeneration: with the current snapshot corrupt,
// the restart loads generation 1 and the WAL replay reconstructs the
// full acknowledged state.
func TestFallbackSkipsCorruptGeneration(t *testing.T) {
	cfg := buildGenerations(t)
	corruptFile(t, cfg.SnapshotPath)

	ix, gen, err := LoadSnapshotFallback(nil, cfg.SnapshotPath, cfg.SnapshotKeep)
	if err != nil {
		t.Fatal(err)
	}
	if gen != 1 || ix.Size() != 11 {
		t.Fatalf("loaded generation %d with %d trees, want generation 1 with 11", gen, ix.Size())
	}

	s := New(ix, cfg)
	if _, err := s.Recover(); err != nil {
		t.Fatal(err)
	}
	defer s.wal.Close()
	if got := s.ix.Size(); got != 13 {
		t.Fatalf("recovered size %d, want 13", got)
	}
	expectTree(t, s, 11, "gen2(c,d)")
	expectTree(t, s, 12, "tail(e,f)")
}

// TestFallbackPastTruncatedGeneration is the worst retained case: the
// current snapshot is corrupt AND generation 1 is truncated mid-file.
// The restart must reach generation 2 — two cuts back — and the WAL,
// ring-gated against trimming below the oldest retained generation,
// still holds every record needed to rebuild the acknowledged state.
func TestFallbackPastTruncatedGeneration(t *testing.T) {
	cfg := buildGenerations(t)
	corruptFile(t, cfg.SnapshotPath)
	truncateFile(t, SnapshotGeneration(cfg.SnapshotPath, 1))

	ix, gen, err := LoadSnapshotFallback(nil, cfg.SnapshotPath, cfg.SnapshotKeep)
	if err != nil {
		t.Fatal(err)
	}
	if gen != 2 || ix.Size() != 10 {
		t.Fatalf("loaded generation %d with %d trees, want generation 2 with 10", gen, ix.Size())
	}

	s := New(ix, cfg)
	rec, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	defer s.wal.Close()
	if rec.Replayed != 3 {
		t.Fatalf("recovery %s, want 3 replayed", rec)
	}
	if got := s.ix.Size(); got != 13 {
		t.Fatalf("recovered size %d, want 13", got)
	}
	expectTree(t, s, 10, "gen1(a,b)")
	expectTree(t, s, 11, "gen2(c,d)")
	expectTree(t, s, 12, "tail(e,f)")
}

// TestFallbackColdStart: no generation on disk is a cold start, reported
// as os.ErrNotExist so callers fall through to other index sources.
func TestFallbackColdStart(t *testing.T) {
	_, _, err := LoadSnapshotFallback(nil, t.TempDir()+"/index.tsix", 3)
	if !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("cold start error %v, want os.ErrNotExist", err)
	}
}

// TestFallbackAllGenerationsDamaged: when every retained generation is
// damaged the error names each one, and keeps the load failures visible
// (operators grep for "corrupt").
func TestFallbackAllGenerationsDamaged(t *testing.T) {
	cfg := buildGenerations(t)
	for gen := 0; gen < cfg.SnapshotKeep; gen++ {
		corruptFile(t, SnapshotGeneration(cfg.SnapshotPath, gen))
	}
	_, _, err := LoadSnapshotFallback(nil, cfg.SnapshotPath, cfg.SnapshotKeep)
	if err == nil {
		t.Fatal("all generations damaged, want an error")
	}
	msg := err.Error()
	if !strings.Contains(msg, "corrupt") {
		t.Fatalf("error does not mention corruption: %v", err)
	}
	for gen := 0; gen < cfg.SnapshotKeep; gen++ {
		if !strings.Contains(msg, SnapshotGeneration(cfg.SnapshotPath, gen)) {
			t.Fatalf("error does not name generation %d: %v", gen, err)
		}
	}
}
