package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"treesim/internal/branch"
	"treesim/internal/editdist"
	"treesim/internal/obs"
	"treesim/internal/search"
	"treesim/internal/tree"
)

// wantTrace reports whether the request asked for an inline span tree.
func wantTrace(r *http.Request) bool { return r.URL.Query().Get("trace") == "1" }

// wantExplain reports whether the request asked for the per-query
// filter-quality analysis (?explain=1).
func wantExplain(r *http.Request) bool { return r.URL.Query().Get("explain") == "1" }

// traceSnapshot renders the request's span tree for an inline response.
// The root span is still running (the middleware ends it after the body is
// written), so it reports elapsed-so-far, which always covers the ended
// stage children.
func traceSnapshot(r *http.Request) *obs.SpanSnapshot {
	sp := obs.FromContext(r.Context())
	if sp == nil {
		return nil
	}
	snap := sp.Snapshot()
	return &snap
}

// statusClientClosed is nginx's convention for "client canceled the
// request"; no standard code exists.
const statusClientClosed = 499

// ctxStatus maps a context error from a query to a response status, error
// code, and message.
func ctxStatus(err error) (int, string, string) {
	if errors.Is(err, context.DeadlineExceeded) {
		return http.StatusGatewayTimeout, ErrCodeDeadlineExceeded, "query deadline exceeded"
	}
	return statusClientClosed, ErrCodeCanceled, "client canceled request"
}

// parseTree parses a request tree, rejecting empties.
func parseTree(field, s string) (*tree.Tree, error) {
	if s == "" {
		return nil, fmt.Errorf("missing %q", field)
	}
	t, err := tree.Parse(s)
	if err != nil {
		return nil, fmt.Errorf("bad %q: %v", field, err)
	}
	if t.IsEmpty() {
		return nil, fmt.Errorf("bad %q: empty tree", field)
	}
	return t, nil
}

// queryResponse converts results + stats to the wire form, attaching tree
// text unless configured away.
func (s *Server) queryResponse(res []search.Result, stats search.Stats) QueryResponse {
	out := QueryResponse{Results: make([]ResultJSON, len(res)), Stats: statsJSON(stats)}
	for i, r := range res {
		out.Results[i] = ResultJSON{ID: r.ID, Dist: r.Dist}
		if !s.cfg.OmitTrees {
			if t, ok := s.ix.TreeAt(r.ID); ok {
				out.Results[i].Tree = t.String()
			}
		}
	}
	return out
}

func (s *Server) handleKNN(w http.ResponseWriter, r *http.Request) {
	var req KNNRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, ErrCodeInvalidRequest, err.Error(), requestID(w))
		return
	}
	if req.K <= 0 {
		writeError(w, http.StatusBadRequest, ErrCodeInvalidArgument, "k must be positive", requestID(w))
		return
	}
	q, err := parseTree("tree", req.Tree)
	if err != nil {
		writeError(w, http.StatusBadRequest, ErrCodeInvalidTree, err.Error(), requestID(w))
		return
	}
	var (
		res   []search.Result
		stats search.Stats
		ex    *search.Explain
	)
	// EXPLAIN analysis runs at most once per request; setExplain hands the
	// one record to every consumer — the ?explain=1 response below, the
	// slow-query log's deferred record, and the flight recorder's retained
	// trace — instead of each forcing its own analysis.
	if wantExplain(r) || s.cfg.SlowQuery != nil {
		res, stats, ex, err = s.ix.KNNExplain(r.Context(), q, req.K)
	} else {
		res, stats, err = s.ix.KNNContext(r.Context(), q, req.K)
	}
	if err != nil {
		status, code, msg := ctxStatus(err)
		writeError(w, status, code, msg, requestID(w))
		return
	}
	s.metrics.ObserveQuery(stats)
	s.recordQuery("knn", req.Tree, req.K, 0, stats)
	setExplain(r.Context(), ex)
	resp := s.queryResponse(res, stats)
	if wantTrace(r) {
		resp.Trace = traceSnapshot(r)
	}
	if wantExplain(r) {
		resp.Explain = ex
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleRange(w http.ResponseWriter, r *http.Request) {
	var req RangeRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, ErrCodeInvalidRequest, err.Error(), requestID(w))
		return
	}
	if req.Tau < 0 {
		writeError(w, http.StatusBadRequest, ErrCodeInvalidArgument, "tau must be non-negative", requestID(w))
		return
	}
	q, err := parseTree("tree", req.Tree)
	if err != nil {
		writeError(w, http.StatusBadRequest, ErrCodeInvalidTree, err.Error(), requestID(w))
		return
	}
	var (
		res   []search.Result
		stats search.Stats
		ex    *search.Explain
	)
	// Same EXPLAIN compute-once-and-share discipline as handleKNN.
	if wantExplain(r) || s.cfg.SlowQuery != nil {
		res, stats, ex, err = s.ix.RangeExplain(r.Context(), q, req.Tau)
	} else {
		res, stats, err = s.ix.RangeContext(r.Context(), q, req.Tau)
	}
	if err != nil {
		status, code, msg := ctxStatus(err)
		writeError(w, status, code, msg, requestID(w))
		return
	}
	s.metrics.ObserveQuery(stats)
	s.recordQuery("range", req.Tree, 0, req.Tau, stats)
	setExplain(r.Context(), ex)
	resp := s.queryResponse(res, stats)
	if wantTrace(r) {
		resp.Trace = traceSnapshot(r)
	}
	if wantExplain(r) {
		resp.Explain = ex
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleDist(w http.ResponseWriter, r *http.Request) {
	var req DistRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, ErrCodeInvalidRequest, err.Error(), requestID(w))
		return
	}
	t1, err := parseTree("t1", req.T1)
	if err != nil {
		writeError(w, http.StatusBadRequest, ErrCodeInvalidTree, err.Error(), requestID(w))
		return
	}
	t2, err := parseTree("t2", req.T2)
	if err != nil {
		writeError(w, http.StatusBadRequest, ErrCodeInvalidTree, err.Error(), requestID(w))
		return
	}
	space := branch.NewSpace(branch.MinQ)
	lb := branch.SearchLBound(space.Profile(t1), space.Profile(t2))
	writeJSON(w, http.StatusOK, DistResponse{
		EditDistance: editdist.Distance(t1, t2),
		LowerBound:   lb,
	})
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, ErrCodeInvalidRequest, err.Error(), requestID(w))
		return
	}
	if req.Op != "knn" && req.Op != "range" {
		writeError(w, http.StatusBadRequest, ErrCodeInvalidArgument, `op must be "knn" or "range"`, requestID(w))
		return
	}
	if len(req.Trees) == 0 {
		writeError(w, http.StatusBadRequest, ErrCodeInvalidArgument, "trees must be non-empty", requestID(w))
		return
	}
	if len(req.Trees) > s.cfg.MaxBatch {
		writeError(w, http.StatusBadRequest, ErrCodeInvalidArgument,
			fmt.Sprintf("batch of %d exceeds limit %d", len(req.Trees), s.cfg.MaxBatch), requestID(w))
		return
	}
	if req.Op == "knn" && req.K <= 0 {
		writeError(w, http.StatusBadRequest, ErrCodeInvalidArgument, "k must be positive", requestID(w))
		return
	}
	if req.Op == "range" && req.Tau < 0 {
		writeError(w, http.StatusBadRequest, ErrCodeInvalidArgument, "tau must be non-negative", requestID(w))
		return
	}
	qs := make([]*tree.Tree, len(req.Trees))
	for i, ts := range req.Trees {
		q, err := parseTree(fmt.Sprintf("trees[%d]", i), ts)
		if err != nil {
			writeError(w, http.StatusBadRequest, ErrCodeInvalidTree, err.Error(), requestID(w))
			return
		}
		qs[i] = q
	}

	// One admission slot covers the whole batch; inside it the queries
	// fan out over the cores, each honoring the request deadline. Each
	// query hangs its own query[i] child off the request span, so a trace
	// shows the fan-out and each query's filter/refine breakdown.
	ctx := r.Context()
	rootSpan := obs.FromContext(ctx)
	out := make([]QueryResponse, len(qs))
	allStats := make([]search.Stats, len(qs))
	var qerr atomic.Value // first context error
	var next atomic.Int64
	next.Store(-1)
	workers := runtime.GOMAXPROCS(0)
	if workers > len(qs) {
		workers = len(qs)
	}
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= len(qs) {
					return
				}
				if err := ctx.Err(); err != nil {
					qerr.CompareAndSwap(nil, err)
					return
				}
				qsp := rootSpan.StartChild(fmt.Sprintf("query[%d]", i))
				qctx := ctx
				if qsp != nil {
					qctx = obs.NewContext(ctx, qsp)
				}
				var res []search.Result
				var stats search.Stats
				var err error
				if req.Op == "knn" {
					res, stats, err = s.ix.KNNContext(qctx, qs[i], req.K)
				} else {
					res, stats, err = s.ix.RangeContext(qctx, qs[i], req.Tau)
				}
				qsp.End()
				if err != nil {
					qerr.CompareAndSwap(nil, err)
					return
				}
				out[i] = s.queryResponse(res, stats)
				allStats[i] = stats
			}
		}()
	}
	wg.Wait()
	if err, _ := qerr.Load().(error); err != nil {
		status, code, msg := ctxStatus(err)
		writeError(w, status, code, msg, requestID(w))
		return
	}
	for i, st := range allStats {
		s.metrics.ObserveQuery(st)
		s.recordQuery(req.Op, req.Trees[i], req.K, req.Tau, st)
	}
	resp := BatchResponse{Queries: out}
	if wantTrace(r) {
		resp.Trace = traceSnapshot(r)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	var req InsertRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, ErrCodeInvalidRequest, err.Error(), requestID(w))
		return
	}
	t, err := parseTree("tree", req.Tree)
	if err != nil {
		writeError(w, http.StatusBadRequest, ErrCodeInvalidTree, err.Error(), requestID(w))
		return
	}
	// A degraded server fast-fails writes without touching the WAL: the
	// disk is known-bad until a heal probe says otherwise, and retrying
	// on every client request would hammer it.
	if s.degraded.Load() {
		writeDegraded(w, "insert", requestID(w))
		return
	}
	// Durability before acknowledgment: the record must be in the WAL
	// before the insert is applied or acked, and walMu makes (assign
	// position, append, apply) atomic so log order matches position
	// order — what makes replay deterministic. Every filter configuration
	// accepts inserts (the segmented store lands them in a memtable
	// segment), so there is no rejection path between append and apply.
	s.walMu.Lock()
	id := s.ix.Size()
	wsp := obs.FromContext(r.Context()).StartChild("wal.append")
	err = s.appendToWAL(id, t)
	wsp.End()
	if err != nil {
		s.walMu.Unlock()
		s.log.Error("wal append failed, insert refused", "err", err)
		s.enterDegraded("wal_append", err)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, ErrCodeNotDurable,
			"insert not durable (write-ahead log append failed); retry", requestID(w))
		return
	}
	id, _ = s.ix.Insert(t)
	s.walMu.Unlock()
	s.inserts.Add(1)
	writeJSON(w, http.StatusOK, InsertResponse{ID: id, Size: s.ix.Size()})
}

// writeDegraded is the uniform write-path rejection while the server is
// in degraded read-only mode.
func writeDegraded(w http.ResponseWriter, op, reqID string) {
	w.Header().Set("Retry-After", "1")
	writeError(w, http.StatusServiceUnavailable, ErrCodeNotDurable,
		op+" refused: server is in degraded read-only mode (durable storage failing); retry", reqID)
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, ErrCodeInvalidArgument, "tree id must be an integer", requestID(w))
		return
	}
	if s.degraded.Load() {
		writeDegraded(w, "delete", requestID(w))
		return
	}
	// Same discipline as inserts: tombstone in the WAL before the delete
	// is applied or acknowledged, with walMu ordering the log like the
	// applies. The existence check runs under walMu too, so a concurrent
	// duplicate delete cannot slip between check and apply.
	s.walMu.Lock()
	if _, ok := s.ix.TreeAt(id); !ok {
		s.walMu.Unlock()
		writeError(w, http.StatusNotFound, ErrCodeNotFound,
			fmt.Sprintf("no tree %d (deleted or never assigned)", id), requestID(w))
		return
	}
	wsp := obs.FromContext(r.Context()).StartChild("wal.append")
	err = s.appendTombstoneToWAL(id)
	wsp.End()
	if err != nil {
		s.walMu.Unlock()
		s.log.Error("wal append failed, delete refused", "err", err)
		s.enterDegraded("wal_append", err)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, ErrCodeNotDurable,
			"delete not durable (write-ahead log append failed); retry", requestID(w))
		return
	}
	s.ix.Delete(id)
	s.walMu.Unlock()
	s.deletes.Add(1)
	writeJSON(w, http.StatusOK, DeleteResponse{ID: id, Live: s.ix.Live()})
}

func (s *Server) handleGetTree(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, ErrCodeInvalidArgument, "tree id must be an integer", requestID(w))
		return
	}
	t, ok := s.ix.TreeAt(id)
	if !ok {
		writeError(w, http.StatusNotFound, ErrCodeNotFound, fmt.Sprintf("no tree %d (index holds %d)", id, s.ix.Size()), requestID(w))
		return
	}
	writeJSON(w, http.StatusOK, TreeResponse{ID: id, Tree: t.String(), Size: t.Size()})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.recovering.Load() {
		writeJSON(w, http.StatusServiceUnavailable, ReadyResponse{
			Status:          "recovering",
			ReplayedRecords: s.replayProgress.Load(),
		})
		return
	}
	if !s.ready.Load() {
		writeJSON(w, http.StatusServiceUnavailable, ReadyResponse{Status: "draining"})
		return
	}
	// Degraded still answers 200: the node serves queries and must keep
	// receiving read traffic; the status string tells routers to shed
	// writes only.
	if deg, reason := s.degradedState(); deg {
		writeJSON(w, http.StatusOK, ReadyResponse{
			Status:          "degraded",
			DegradedReason:  reason,
			ReplayedRecords: s.walReplayed.Load(),
			WALRecords:      s.walRecords.Load(),
		})
		return
	}
	writeJSON(w, http.StatusOK, ReadyResponse{
		Status:          "ready",
		ReplayedRecords: s.walReplayed.Load(),
		WALRecords:      s.walRecords.Load(),
	})
}

// wantsProm decides the /metrics representation. JSON stays the default
// for backward compatibility; ?format=prom forces Prometheus text, as does
// an Accept header asking for text/plain without application/json (what a
// Prometheus scraper sends).
func wantsProm(r *http.Request) bool {
	switch r.URL.Query().Get("format") {
	case "prom":
		return true
	case "json":
		return false
	}
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "text/plain") && !strings.Contains(accept, "application/json")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	deg, degReason := s.degradedState()
	var walSegs int
	var walBytes int64
	if s.wal != nil {
		walSegs = s.wal.Segments()
		walBytes = s.wal.Bytes()
	}
	if wantsProm(r) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		st := s.ix.StoreStats()
		_ = s.metrics.WriteProm(w, PromGauges{
			Runtime:          obs.ReadRuntime(),
			SLO:              s.slo.Report(),
			Recorder:         s.recorder.Stats(),
			Exporter:         s.exporter.Stats(),
			Profiler:         s.profiler.Stats(),
			IndexSize:        s.ix.Size(),
			IndexLive:        st.Live,
			IndexFilter:      s.ix.Filter().Name(),
			InFlight:         s.sem.inflight(),
			MaxInFlight:      cap(s.sem),
			Inserts:          s.inserts.Load(),
			Deletes:          s.deletes.Load(),
			Snapshots:        s.snapshots.Load(),
			WALRecords:       s.walRecords.Load(),
			WALReplayed:      s.walReplayed.Load(),
			WALSegments:      walSegs,
			WALBytes:         walBytes,
			SnapCRCFailures:  s.snapCRCFail.Load(),
			Degraded:         deg,
			DegradedReason:   degReason,
			DegradedTotal:    s.degradedTotal.Load(),
			StoreEpoch:       st.Epoch,
			StoreSegments:    st.Segments,
			StoreMemtableLen: st.MemtableLen,
			StoreTombstones:  st.Tombstones,
			StoreSeals:       st.Seals,
			StoreCompactions: st.Compactions,
		})
		return
	}
	snap := s.metrics.Snapshot()
	st := s.ix.StoreStats()
	snap.IndexSize = s.ix.Size()
	snap.IndexLive = st.Live
	snap.IndexFilter = s.ix.Filter().Name()
	snap.InFlight = s.sem.inflight()
	snap.MaxInFlight = cap(s.sem)
	snap.Inserts = s.inserts.Load()
	snap.Deletes = s.deletes.Load()
	snap.Snapshots = s.snapshots.Load()
	snap.WALRecords = s.walRecords.Load()
	snap.WALReplayedRecords = s.walReplayed.Load()
	snap.WALSegments = walSegs
	snap.WALBytes = walBytes
	snap.SnapshotCRCFailures = s.snapCRCFail.Load()
	if deg {
		snap.Degraded = 1
	}
	snap.DegradedReason = degReason
	snap.DegradedTotal = s.degradedTotal.Load()
	snap.StoreEpoch = st.Epoch
	snap.StoreSegments = st.Segments
	snap.StoreMemtableLen = st.MemtableLen
	snap.StoreTombstones = st.Tombstones
	snap.StoreSeals = st.Seals
	snap.StoreCompactions = st.Compactions
	snap.Runtime = runtimeJSON(obs.ReadRuntime())
	snap.SLO = s.slo.Report()
	snap.TraceRecorder = s.recorder.Stats()
	snap.OTLPExport = otlpExportJSON(s.exporter.Stats())
	snap.TailProfiler = s.profiler.Stats()
	writeJSON(w, http.StatusOK, snap)
}
