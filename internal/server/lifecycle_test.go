package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"treesim/internal/search"
)

// TestServeShutdownFinalSnapshot runs the full lifecycle on a real
// listener: serve, mutate the index over HTTP, shut down gracefully, and
// verify the final snapshot reloads into an equivalent index — the
// acceptance criterion for graceful shutdown.
func TestServeShutdownFinalSnapshot(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "index.tsix")
	ts := testDataset(30, 20)
	ix := search.NewIndex(ts, search.NewBiBranch())
	cfg := quietConfig()
	cfg.SnapshotPath = snap
	cfg.SnapshotInterval = -1 // only the final shutdown snapshot
	s := New(ix, cfg)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(ln) }()
	base := "http://" + ln.Addr().String()

	// Wait until the server answers readiness.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == 200 {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("server never became ready")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Mutate and query over the wire.
	novel := "q0(q1(q2),q3)"
	body, _ := json.Marshal(InsertRequest{Tree: novel})
	resp, err := http.Post(base+"/v1/trees", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("insert status %d", resp.StatusCode)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		t.Fatalf("Serve returned %v, want ErrServerClosed", err)
	}
	// The listener is really closed.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("server still answering after shutdown")
	}

	// The final snapshot holds the insert and reloads equivalently.
	f, err := os.Open(snap)
	if err != nil {
		t.Fatalf("final snapshot missing: %v", err)
	}
	defer f.Close()
	loaded, err := search.LoadIndex(f)
	if err != nil {
		t.Fatalf("loading final snapshot: %v", err)
	}
	if loaded.Size() != len(ts)+1 {
		t.Fatalf("snapshot holds %d trees, want %d", loaded.Size(), len(ts)+1)
	}
	for qi, q := range []int{0, 15, 30} {
		a, _, _ := ix.KNN(context.Background(), ix.Tree(q), 4)
		b, _, _ := loaded.KNN(context.Background(), loaded.Tree(q), 4)
		if len(a) != len(b) {
			t.Fatalf("query %d: reloaded index answers differently", qi)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("query %d result %d: live %+v, reloaded %+v", qi, i, a[i], b[i])
			}
		}
	}
}

// TestPeriodicSnapshot: the background loop persists inserts without any
// shutdown.
func TestPeriodicSnapshot(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "index.tsix")
	ix := search.NewIndex(testDataset(15, 21), search.NewBiBranch())
	cfg := quietConfig()
	cfg.SnapshotPath = snap
	cfg.SnapshotInterval = 10 * time.Millisecond
	s := New(ix, cfg)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()

	if _, err := ix.Insert(testDataset(1, 22)[0]); err != nil {
		t.Fatal(err)
	}
	s.inserts.Add(1) // as the insert handler would

	deadline := time.Now().Add(5 * time.Second)
	for s.snapshots.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("periodic snapshot never ran")
		}
		time.Sleep(5 * time.Millisecond)
	}
	f, err := os.Open(snap)
	if err != nil {
		t.Fatalf("periodic snapshot missing: %v", err)
	}
	defer f.Close()
	loaded, err := search.LoadIndex(f)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Size() != 16 {
		t.Fatalf("periodic snapshot holds %d trees, want 16", loaded.Size())
	}
}

// TestSnapshotWithoutPath: Snapshot is a configured no-op.
func TestSnapshotWithoutPath(t *testing.T) {
	ix := search.NewIndex(testDataset(5, 23), search.NewBiBranch())
	s := New(ix, quietConfig())
	if err := s.Snapshot(); err != nil {
		t.Fatalf("Snapshot without a path: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown without serving: %v", err)
	}
}
