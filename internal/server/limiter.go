package server

// limiter is a semaphore-based admission controller: at most cap(l) query
// requests execute at once; the rest are rejected immediately with 429
// (backpressure beats queueing — the client can retry against a replica).
// Cheap endpoints (health, metrics, tree lookup) are not admitted through
// it.
type limiter chan struct{}

func newLimiter(n int) limiter { return make(limiter, n) }

// tryAcquire claims a slot without blocking; false means saturated.
func (l limiter) tryAcquire() bool {
	select {
	case l <- struct{}{}:
		return true
	default:
		return false
	}
}

func (l limiter) release() { <-l }

// inflight returns the number of slots currently held.
func (l limiter) inflight() int { return len(l) }
