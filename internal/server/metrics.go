package server

import (
	"sort"
	"strconv"
	"sync"
	"time"

	"treesim/internal/obs"
	"treesim/internal/search"
)

// Metrics is the server's expvar-style instrumentation: per-endpoint
// request counters and latency histograms, plus the paper's own quality
// measure aggregated over every similarity query served — the accessed
// fraction (share of the dataset verified with an exact edit distance,
// from search.Stats). Everything is rendered as one JSON document at
// GET /metrics, or as Prometheus text exposition with ?format=prom (see
// prom.go).
type Metrics struct {
	start time.Time

	mu        sync.Mutex
	endpoints map[string]*endpointStats
	query     queryStats

	// Duration histograms in seconds, backed by internal/obs (internally
	// atomic — observed outside mu). WALAppend/WALFsync are handed to the
	// write-ahead log at open; QueryFilter/QueryRefine split each
	// similarity query into the paper's two stages; SnapshotWrite times
	// whole snapshot publications.
	WALAppend     *obs.Histogram
	WALFsync      *obs.Histogram
	QueryFilter   *obs.Histogram
	QueryRefine   *obs.Histogram
	SnapshotWrite *obs.Histogram
	// Compaction times each segment-merge of the storage engine (filter
	// rebuild included).
	Compaction *obs.Histogram

	// Filter-quality histograms, fed from every similarity query.
	// FilterCandidates buckets the per-query candidate count the filter
	// let through; FalsePositiveRatio the share of verified candidates the
	// exact distance then rejected (only queries that verified something).
	// Tightness is a rolling (bounded-memory, ~10 min window) histogram of
	// BDist/EDist ratios over verified pairs — live evidence for the
	// paper's ≤ 4(q−1)+1 bound, from recent traffic rather than since
	// process start.
	FilterCandidates   *obs.Histogram
	FalsePositiveRatio *obs.Histogram
	Tightness          *obs.RollingHistogram

	// DPCellsPerVerify buckets, per query, the mean dynamic-programming
	// cells paid per verification — the bounded refine engine's work
	// gauge (a full Zhang–Shasha verification of two ~30-node trees costs
	// thousands of cells; pre-checks and early aborts pull the mean down).
	DPCellsPerVerify *obs.Histogram
}

// latencyBounds are the histogram bucket upper bounds.
var latencyBounds = []time.Duration{
	500 * time.Microsecond,
	time.Millisecond,
	2500 * time.Microsecond,
	5 * time.Millisecond,
	10 * time.Millisecond,
	25 * time.Millisecond,
	50 * time.Millisecond,
	100 * time.Millisecond,
	250 * time.Millisecond,
	500 * time.Millisecond,
	time.Second,
	2500 * time.Millisecond,
}

// accessedBounds bucket the per-query accessed fraction.
var accessedBounds = []float64{0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1}

// candidateBounds bucket the per-query candidate count.
var candidateBounds = []float64{1, 2, 5, 10, 25, 50, 100, 250, 1000, 10000}

// ratioBounds bucket fractions in [0,1] (false-positive ratio).
var ratioBounds = []float64{0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 1}

// tightnessBounds bucket BDist/EDist ratios; the paper bounds them by
// Factor(q) = 4(q−1)+1, i.e. 5 at the default q=2.
var tightnessBounds = []float64{0.5, 1, 1.5, 2, 2.5, 3, 3.5, 4, 4.5, 5}

// tightnessWindow is the rolling histogram's span (10 slots inside it).
const tightnessWindow = 10 * time.Minute

// dpCellsBounds bucket the mean DP cells per verification.
var dpCellsBounds = []float64{16, 64, 256, 1024, 4096, 16384, 65536, 262144}

type endpointStats struct {
	requests uint64
	errors   uint64 // 5xx
	rejected uint64 // 429 (admission)
	timeouts uint64 // 504 (query deadline)
	buckets  []uint64
	sum      time.Duration
	// exemplars remembers, per latency bucket, the most recent request ID
	// that landed there — the bridge from a histogram spike to a concrete
	// retained trace (GET /debug/traces/{request_id}).
	exemplars *obs.Exemplars
}

type queryStats struct {
	count           uint64
	total           search.Stats
	accessedSum     float64 // sum of per-query accessed fractions (histogram _sum)
	accessedBuckets []uint64
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		start:              time.Now(),
		endpoints:          make(map[string]*endpointStats),
		WALAppend:          obs.NewHistogram(obs.DefDurationBuckets),
		WALFsync:           obs.NewHistogram(obs.DefDurationBuckets),
		QueryFilter:        obs.NewHistogram(obs.DefDurationBuckets),
		QueryRefine:        obs.NewHistogram(obs.DefDurationBuckets),
		SnapshotWrite:      obs.NewHistogram(obs.DefDurationBuckets),
		Compaction:         obs.NewHistogram(obs.DefDurationBuckets),
		FilterCandidates:   obs.NewHistogram(candidateBounds),
		FalsePositiveRatio: obs.NewHistogram(ratioBounds),
		Tightness:          obs.NewRollingHistogram(tightnessBounds, tightnessWindow, 10),
		DPCellsPerVerify:   obs.NewHistogram(dpCellsBounds),
	}
}

// Observe records one finished request. rid (the request ID) becomes the
// latency bucket's exemplar; pass "" to skip exemplar tracking.
func (m *Metrics) Observe(endpoint string, status int, d time.Duration, rid string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e := m.endpoints[endpoint]
	if e == nil {
		e = &endpointStats{
			buckets:   make([]uint64, len(latencyBounds)+1),
			exemplars: obs.NewExemplars(latencySecondsBounds),
		}
		m.endpoints[endpoint] = e
	}
	e.requests++
	switch {
	case status == 429:
		e.rejected++
	case status == 504:
		e.timeouts++
	case status >= 500:
		e.errors++
	}
	e.sum += d
	i := sort.Search(len(latencyBounds), func(i int) bool { return d <= latencyBounds[i] })
	e.buckets[i]++
	if rid != "" {
		e.exemplars.Observe(d.Seconds(), rid)
	}
}

// ObserveQuery folds one similarity query's stats into the aggregate.
// Batch requests call it once per inner query.
func (m *Metrics) ObserveQuery(s search.Stats) {
	m.QueryFilter.ObserveDuration(s.FilterTime)
	m.QueryRefine.ObserveDuration(s.RefineTime)
	m.FilterCandidates.Observe(float64(s.Candidates))
	if s.Verified > 0 {
		m.FalsePositiveRatio.Observe(s.FalsePositiveRate())
		m.DPCellsPerVerify.Observe(float64(s.DPCells) / float64(s.Verified))
	}
	for _, t := range s.Tightness {
		m.Tightness.Observe(t)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.query.accessedBuckets == nil {
		m.query.accessedBuckets = make([]uint64, len(accessedBounds)+1)
	}
	m.query.count++
	m.query.total.Add(s)
	f := s.AccessedFraction()
	m.query.accessedSum += f
	i := sort.Search(len(accessedBounds), func(i int) bool { return f <= accessedBounds[i] })
	m.query.accessedBuckets[i]++
}

// EndpointSnapshot is the rendered state of one endpoint. Exemplars maps
// latency bucket labels to the most recent request that landed there.
type EndpointSnapshot struct {
	Requests  uint64                   `json:"requests"`
	Errors    uint64                   `json:"errors"`
	Rejected  uint64                   `json:"rejected"`
	Timeouts  uint64                   `json:"timeouts"`
	LatencyUS LatencySnapshot          `json:"latency_us"`
	Buckets   map[string]uint64        `json:"latency_buckets"`
	Exemplars map[string]*obs.Exemplar `json:"latency_exemplars,omitempty"`
}

// LatencySnapshot summarizes an endpoint's latency histogram.
type LatencySnapshot struct {
	Count uint64 `json:"count"`
	Sum   int64  `json:"sum"`
	Mean  int64  `json:"mean"`
}

// QuerySnapshot is the rendered aggregate over all similarity queries.
type QuerySnapshot struct {
	Count                uint64  `json:"count"`
	VerifiedTotal        int     `json:"verified_total"`
	DatasetTotal         int     `json:"dataset_total"`
	ResultsTotal         int     `json:"results_total"`
	CandidatesTotal      int     `json:"candidates_total"`
	FalsePositivesTotal  int     `json:"false_positives_total"`
	MeanAccessedFraction float64 `json:"mean_accessed_fraction"`
	FalsePositiveRate    float64 `json:"false_positive_rate"`
	FilterMicrosTotal    int64   `json:"filter_us_total"`
	RefineMicrosTotal    int64   `json:"refine_us_total"`
	// Bounded-verification counters: of the verification attempts, how
	// many the refine stage cut short by a pre-check or an early DP abort,
	// and the DP cells actually computed vs. what full verification of the
	// same pairs would have cost.
	RefineAbortedTotal   int               `json:"refine_aborted_total"`
	PrecheckRejectsTotal int               `json:"precheck_rejects_total"`
	DPCellsTotal         int64             `json:"dp_cells_total"`
	DPCellsFullTotal     int64             `json:"dp_cells_full_total"`
	AccessedBuckets      map[string]uint64 `json:"accessed_fraction_buckets"`
}

// Snapshot is the full /metrics document; the server adds the live gauges
// (index size, in-flight requests) before marshaling.
type Snapshot struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	// IndexSize is the id high-water mark; IndexLive the visible tree
	// count (tombstoned trees excluded).
	IndexSize   int    `json:"index_size"`
	IndexLive   int    `json:"index_live"`
	IndexFilter string `json:"index_filter"`
	InFlight    int    `json:"inflight"`
	MaxInFlight int    `json:"max_inflight"`
	Inserts     uint64 `json:"inserts_total"`
	Deletes     uint64 `json:"deletes_total"`
	Snapshots   uint64 `json:"snapshots_total"`
	// Storage-engine gauges: the epoch (logical-state counter; bumps on
	// every insert, delete, seal and compaction), sealed segment count,
	// memtable fill, unresolved tombstones, and the lifetime seal and
	// compaction counters.
	StoreEpoch       uint64 `json:"store_epoch"`
	StoreSegments    int    `json:"store_segments"`
	StoreMemtableLen int    `json:"store_memtable_len"`
	StoreTombstones  int    `json:"store_tombstones"`
	StoreSeals       uint64 `json:"store_seals_total"`
	StoreCompactions uint64 `json:"store_compactions_total"`
	// Durability gauges: WAL records appended by this process, records
	// replayed during startup recovery, the segment count and total bytes
	// of the live log (checkpoint health: growing bytes mean snapshots
	// are falling behind), and snapshots that failed their checksum
	// self-verification (and were therefore not published).
	WALRecords          uint64 `json:"wal_records_total"`
	WALReplayedRecords  uint64 `json:"wal_replayed_records"`
	WALSegments         int    `json:"wal_segments"`
	WALBytes            int64  `json:"wal_bytes"`
	SnapshotCRCFailures uint64 `json:"snapshot_crc_failures"`
	// Degraded read-only mode: 1 while durable writes are failing (with
	// the entry reason), plus a lifetime entry counter.
	Degraded       int                         `json:"degraded"`
	DegradedReason string                      `json:"degraded_reason,omitempty"`
	DegradedTotal  uint64                      `json:"degraded_total"`
	Endpoints      map[string]EndpointSnapshot `json:"endpoints"`
	Queries        QuerySnapshot               `json:"queries"`
	// Duration histograms (seconds): WAL durability cost, per-stage query
	// time, snapshot publication time.
	WALAppendSeconds     HistogramJSON `json:"wal_append_seconds"`
	WALFsyncSeconds      HistogramJSON `json:"wal_fsync_seconds"`
	QueryFilterSeconds   HistogramJSON `json:"query_filter_seconds"`
	QueryRefineSeconds   HistogramJSON `json:"query_refine_seconds"`
	SnapshotWriteSeconds HistogramJSON `json:"snapshot_write_seconds"`
	CompactionSeconds    HistogramJSON `json:"compaction_seconds"`
	// Filter-quality histograms: per-query candidate counts, per-query
	// false-positive ratios, and the rolling-window tightness ratios
	// (BDist/EDist over recently verified pairs).
	FilterCandidates   HistogramJSON `json:"filter_candidates"`
	FilterFPRatio      HistogramJSON `json:"filter_false_positive_ratio"`
	FilterTightness10m HistogramJSON `json:"filter_tightness_ratio_10m"`
	// Bounded-refine work histogram: per-query mean DP cells per
	// verification (the sum field is in cells, not seconds).
	RefineDPCells HistogramJSON `json:"refine_dp_cells_per_verification"`
	// Runtime telemetry (heap, goroutines, GC pauses, scheduler latency),
	// the per-endpoint SLO burn-rate table, and the flight recorder's
	// retention stats. Filled by the handler per scrape, like the gauges.
	Runtime       RuntimeJSON       `json:"runtime"`
	SLO           obs.SLOReport     `json:"slo"`
	TraceRecorder obs.RecorderStats `json:"trace_recorder"`
	// Trace-export pipeline health (queue depth, deliveries, drops) and
	// the tail profiler's capture counters. Filled by the handler per
	// scrape; zero when the subsystem is disabled.
	OTLPExport   OTLPExportJSON    `json:"otlp_export"`
	TailProfiler obs.ProfilerStats `json:"tail_profiler"`
}

// OTLPExportJSON renders obs.ExporterStats with the registry's
// histogram bucket-label convention for the batch latency.
type OTLPExportJSON struct {
	Queued              int           `json:"queued"`
	Offered             uint64        `json:"offered"`
	Batches             uint64        `json:"batches"`
	SentSpans           uint64        `json:"sent_spans"`
	Dropped             uint64        `json:"dropped"`
	Retries             uint64        `json:"retries"`
	BatchLatencySeconds HistogramJSON `json:"batch_latency_seconds"`
}

func otlpExportJSON(st obs.ExporterStats) OTLPExportJSON {
	return OTLPExportJSON{
		Queued:              st.Queued,
		Offered:             st.Offered,
		Batches:             st.Batches,
		SentSpans:           st.SentSpans,
		Dropped:             st.Dropped,
		Retries:             st.Retries,
		BatchLatencySeconds: histogramSnapshotJSON(st.BatchLatency),
	}
}

// RuntimeJSON renders obs.RuntimeStats with the registry's histogram
// bucket-label convention.
type RuntimeJSON struct {
	HeapBytes           uint64        `json:"heap_bytes"`
	Goroutines          uint64        `json:"goroutines"`
	GCCycles            uint64        `json:"gc_cycles"`
	GCPauseSeconds      HistogramJSON `json:"gc_pause_seconds"`
	SchedLatencySeconds HistogramJSON `json:"sched_latency_seconds"`
}

func runtimeJSON(rs obs.RuntimeStats) RuntimeJSON {
	return RuntimeJSON{
		HeapBytes:           rs.HeapBytes,
		Goroutines:          rs.Goroutines,
		GCCycles:            rs.GCCycles,
		GCPauseSeconds:      histogramSnapshotJSON(rs.GCPause),
		SchedLatencySeconds: histogramSnapshotJSON(rs.SchedLatency),
	}
}

// HistogramJSON is the JSON rendering of an obs.Histogram: bucket labels
// follow the same le_<seconds> convention as the endpoint latency buckets.
type HistogramJSON struct {
	Count      uint64            `json:"count"`
	SumSeconds float64           `json:"sum_seconds"`
	Buckets    map[string]uint64 `json:"buckets"`
}

func histogramJSON(h *obs.Histogram) HistogramJSON {
	return histogramSnapshotJSON(h.Snapshot())
}

func histogramSnapshotJSON(s obs.HistogramSnapshot) HistogramJSON {
	out := HistogramJSON{Count: s.Count, SumSeconds: s.Sum, Buckets: make(map[string]uint64, len(s.Counts))}
	for i, c := range s.Counts {
		if i < len(s.Bounds) {
			out.Buckets[bucketLabel(s.Bounds[i])] = c
		} else {
			out.Buckets["le_inf"] = c
		}
	}
	return out
}

// Snapshot renders the counters; the caller fills the gauge fields.
func (m *Metrics) Snapshot() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := Snapshot{
		UptimeSeconds: time.Since(m.start).Seconds(),
		Endpoints:     make(map[string]EndpointSnapshot, len(m.endpoints)),
	}
	for name, e := range m.endpoints {
		snap := EndpointSnapshot{
			Requests: e.requests,
			Errors:   e.errors,
			Rejected: e.rejected,
			Timeouts: e.timeouts,
			Buckets:  make(map[string]uint64, len(e.buckets)),
			LatencyUS: LatencySnapshot{
				Count: e.requests,
				Sum:   e.sum.Microseconds(),
			},
		}
		if e.requests > 0 {
			snap.LatencyUS.Mean = e.sum.Microseconds() / int64(e.requests)
		}
		for i, c := range e.buckets {
			snap.Buckets[latencyBucketLabel(i)] = c
		}
		for i, ex := range e.exemplars.Snapshot() {
			if ex == nil {
				continue
			}
			if snap.Exemplars == nil {
				snap.Exemplars = make(map[string]*obs.Exemplar)
			}
			snap.Exemplars[latencyBucketLabel(i)] = ex
		}
		out.Endpoints[name] = snap
	}
	q := m.query
	out.Queries = QuerySnapshot{
		Count:                q.count,
		VerifiedTotal:        q.total.Verified,
		DatasetTotal:         q.total.Dataset,
		ResultsTotal:         q.total.Results,
		CandidatesTotal:      q.total.Candidates,
		FalsePositivesTotal:  q.total.FalsePositives,
		FilterMicrosTotal:    q.total.FilterTime.Microseconds(),
		RefineMicrosTotal:    q.total.RefineTime.Microseconds(),
		RefineAbortedTotal:   q.total.RefineAborted,
		PrecheckRejectsTotal: q.total.PrecheckRejects,
		DPCellsTotal:         q.total.DPCells,
		DPCellsFullTotal:     q.total.DPCellsFull,
		AccessedBuckets:      make(map[string]uint64, len(q.accessedBuckets)),
	}
	out.Queries.MeanAccessedFraction = q.total.AccessedFraction()
	out.Queries.FalsePositiveRate = q.total.FalsePositiveRate()
	for i, c := range q.accessedBuckets {
		out.Queries.AccessedBuckets[accessedBucketLabel(i)] = c
	}
	out.WALAppendSeconds = histogramJSON(m.WALAppend)
	out.WALFsyncSeconds = histogramJSON(m.WALFsync)
	out.QueryFilterSeconds = histogramJSON(m.QueryFilter)
	out.QueryRefineSeconds = histogramJSON(m.QueryRefine)
	out.SnapshotWriteSeconds = histogramJSON(m.SnapshotWrite)
	out.CompactionSeconds = histogramJSON(m.Compaction)
	out.FilterCandidates = histogramJSON(m.FilterCandidates)
	out.FilterFPRatio = histogramJSON(m.FalsePositiveRatio)
	out.FilterTightness10m = histogramSnapshotJSON(m.Tightness.Snapshot())
	out.RefineDPCells = histogramJSON(m.DPCellsPerVerify)
	return out
}

// bucketLabel renders a histogram upper bound as a stable, parseable
// label: "le_" + the shortest exact decimal ("le_0.0025", "le_1"). Go
// duration strings ("le_2.5ms") are illegal as Prometheus label parts and
// unstable across formatting changes; everything numeric, in base units
// (seconds for time), parses back with strconv.ParseFloat — as does the
// "inf" of the overflow bucket.
func bucketLabel(bound float64) string {
	return "le_" + strconv.FormatFloat(bound, 'g', -1, 64)
}

func latencyBucketLabel(i int) string {
	if i == len(latencyBounds) {
		return "le_inf"
	}
	return bucketLabel(latencyBounds[i].Seconds())
}

func accessedBucketLabel(i int) string {
	if i == len(accessedBounds) {
		return "le_inf"
	}
	return bucketLabel(accessedBounds[i])
}
