package server

import (
	"testing"
	"time"

	"treesim/internal/search"
)

// TestMetricsEndpoint: counters, latency histograms and the
// accessed-fraction aggregate all move when traffic flows, and the
// /metrics document carries the live gauges.
func TestMetricsEndpoint(t *testing.T) {
	s, hs, ts := newTestServer(t, quietConfig(), 40, 40)

	for i := 0; i < 3; i++ {
		if code := postJSON(t, hs.URL+"/v1/knn", KNNRequest{Tree: ts[i].String(), K: 2}, nil); code != 200 {
			t.Fatalf("knn status %d", code)
		}
	}
	if code := postJSON(t, hs.URL+"/v1/range", RangeRequest{Tree: ts[0].String(), Tau: 1}, nil); code != 200 {
		t.Fatalf("range status %d", code)
	}
	// One client error, counted but not as a 5xx.
	postJSON(t, hs.URL+"/v1/knn", KNNRequest{Tree: "a(b", K: 2}, nil)
	// One insert, to move the gauge.
	postJSON(t, hs.URL+"/v1/trees", InsertRequest{Tree: "m0(m1,m2)"}, nil)

	var snap Snapshot
	if code := getJSON(t, hs.URL+"/metrics", &snap); code != 200 {
		t.Fatalf("metrics status %d", code)
	}

	knn := snap.Endpoints["/v1/knn"]
	if knn.Requests != 4 {
		t.Errorf("knn requests %d, want 4 (3 ok + 1 bad)", knn.Requests)
	}
	if knn.Errors != 0 {
		t.Errorf("knn 5xx count %d, want 0", knn.Errors)
	}
	var bucketSum uint64
	for _, c := range knn.Buckets {
		bucketSum += c
	}
	if bucketSum != knn.Requests {
		t.Errorf("knn latency buckets sum to %d, requests %d", bucketSum, knn.Requests)
	}
	if snap.Endpoints["/v1/range"].Requests != 1 {
		t.Errorf("range requests %d, want 1", snap.Endpoints["/v1/range"].Requests)
	}

	// The paper's quality measure: 4 successful queries aggregated.
	if snap.Queries.Count != 4 {
		t.Errorf("query count %d, want 4", snap.Queries.Count)
	}
	if snap.Queries.MeanAccessedFraction <= 0 || snap.Queries.MeanAccessedFraction > 1 {
		t.Errorf("mean accessed fraction %v out of (0,1]", snap.Queries.MeanAccessedFraction)
	}
	if snap.Queries.VerifiedTotal <= 0 || snap.Queries.VerifiedTotal > snap.Queries.DatasetTotal {
		t.Errorf("verified %d out of range (dataset %d)", snap.Queries.VerifiedTotal, snap.Queries.DatasetTotal)
	}
	var accSum uint64
	for _, c := range snap.Queries.AccessedBuckets {
		accSum += c
	}
	if accSum != snap.Queries.Count {
		t.Errorf("accessed-fraction buckets sum to %d, queries %d", accSum, snap.Queries.Count)
	}

	// Gauges.
	if snap.IndexSize != 41 {
		t.Errorf("index_size %d, want 41", snap.IndexSize)
	}
	if snap.IndexFilter != "BiBranch" {
		t.Errorf("index_filter %q", snap.IndexFilter)
	}
	if snap.Inserts != 1 {
		t.Errorf("inserts_total %d, want 1", snap.Inserts)
	}
	if snap.MaxInFlight != s.cfg.MaxInFlight {
		t.Errorf("max_inflight %d, want %d", snap.MaxInFlight, s.cfg.MaxInFlight)
	}
	if snap.UptimeSeconds < 0 {
		t.Errorf("uptime %v negative", snap.UptimeSeconds)
	}
}

// TestMetricsObserve: direct unit check of the histogram bucketing edges.
func TestMetricsObserve(t *testing.T) {
	m := NewMetrics()
	m.Observe("/x", 200, 100*time.Microsecond, "r1") // first bucket
	m.Observe("/x", 200, 10*time.Second, "r2")       // overflow bucket
	m.Observe("/x", 429, time.Millisecond, "r3")
	m.Observe("/x", 504, time.Millisecond, "r4")
	m.Observe("/x", 500, time.Millisecond, "")
	snap := m.Snapshot()
	e := snap.Endpoints["/x"]
	if e.Requests != 5 || e.Rejected != 1 || e.Timeouts != 1 || e.Errors != 1 {
		t.Fatalf("counters %+v", e)
	}
	if e.Buckets["le_inf"] != 1 {
		t.Errorf("overflow bucket %d, want 1", e.Buckets["le_inf"])
	}
	if e.Buckets[latencyBucketLabel(0)] != 1 {
		t.Errorf("first bucket %d, want 1", e.Buckets[latencyBucketLabel(0)])
	}
	// Exemplars follow the bucket labels; r4 overwrote r3's 1ms slot, and
	// the "" request id left the 1ms slot's exemplar untouched.
	if ex := e.Exemplars[latencyBucketLabel(0)]; ex == nil || ex.RequestID != "r1" {
		t.Errorf("first-bucket exemplar %+v, want r1", ex)
	}
	if ex := e.Exemplars["le_inf"]; ex == nil || ex.RequestID != "r2" {
		t.Errorf("overflow exemplar %+v, want r2", ex)
	}
	if ex := e.Exemplars[latencyBucketLabel(1)]; ex == nil || ex.RequestID != "r4" {
		t.Errorf("1ms exemplar %+v, want r4 (latest wins)", ex)
	}

	m.ObserveQuery(search.Stats{Dataset: 100, Verified: 5, Results: 3})
	m.ObserveQuery(search.Stats{Dataset: 100, Verified: 100, Results: 100})
	q := m.Snapshot().Queries
	if q.Count != 2 || q.VerifiedTotal != 105 || q.DatasetTotal != 200 {
		t.Fatalf("query aggregate %+v", q)
	}
	if q.AccessedBuckets["le_0.05"] != 1 || q.AccessedBuckets["le_1"] != 1 {
		t.Fatalf("accessed buckets %v", q.AccessedBuckets)
	}
}
