package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"treesim/internal/obs"
	"treesim/internal/search"
)

// explainHolder carries a query's EXPLAIN record from the handler back to
// the middleware's deferred consumers — the slow-query log and the flight
// recorder's retained trace. The handler and the defer run on the same
// goroutine, so a plain field suffices; the analysis is computed at most
// once per request and shared by everyone (?explain=1 included).
type explainHolder struct{ ex *search.Explain }

type explainKey struct{}

// setExplain hands the handler's EXPLAIN record (possibly nil) to the
// middleware for slow-query logging. A no-op when the middleware did not
// install a holder (slow-query log disabled).
func setExplain(ctx context.Context, ex *search.Explain) {
	if h, ok := ctx.Value(explainKey{}).(*explainHolder); ok {
		h.ex = ex
	}
}

// statusWriter records the status code for logging and metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.status = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

// instrument wraps a handler with the server's middleware stack: request
// ID assignment, panic recovery, structured logging, metrics, body-size
// capping and — for query endpoints (limited=true) — semaphore admission
// with 429 backpressure and the per-request deadline.
func (s *Server) instrument(endpoint string, limited bool, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rid := r.Header.Get("X-Request-Id")
		if rid == "" {
			rid = fmt.Sprintf("r%08x", s.reqSeq.Add(1))
		}
		w.Header().Set("X-Request-Id", rid)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}

		// Every request gets a root span keyed by its request ID; handlers
		// and the search engine hang stage children off it through the
		// context. Snapshotting is deferred until someone asks (?trace=1,
		// the slow-query log, or the OTLP exporter), so an unobserved trace
		// costs only the root allocation.
		//
		// An inbound W3C traceparent continues the caller's trace — same
		// trace ID, root parented under the caller's span; a malformed one
		// falls back to a fresh trace per the spec's restart rule. The
		// trace ID echoes back on X-Trace-Id, so even unexported requests
		// hand the caller a handle into /debug/traces.
		tc, tperr := obs.ParseTraceparent(r.Header.Get("traceparent"))
		if tperr == nil {
			tc.State = r.Header.Get("tracestate")
		}
		span := obs.NewRemote(endpoint, tc)
		traceID := span.TraceID().String()
		w.Header().Set("X-Trace-Id", traceID)
		span.SetStr("request_id", rid)
		if n, ok := obs.ParseRetryState(tc.State); ok {
			// The client's retry counter, carried in tracestate so every
			// attempt of one logical request lands in the same trace.
			span.SetInt("retry", int64(n))
		}
		r = r.WithContext(obs.NewContext(r.Context(), span))

		// The slow-query log and the flight recorder both want the query's
		// EXPLAIN record alongside the span tree; the holder lets the
		// handler pass the one computed record upward without the
		// middleware knowing which endpoint ran.
		var holder *explainHolder
		if limited {
			holder = &explainHolder{}
			r = r.WithContext(context.WithValue(r.Context(), explainKey{}, holder))
		}

		defer func() {
			if p := recover(); p != nil {
				s.log.Error("handler panic", "request_id", rid, "endpoint", endpoint, "panic", p)
				if !sw.wrote {
					writeError(sw, http.StatusInternalServerError, ErrCodeInternal, "internal error", rid)
				}
				sw.status = http.StatusInternalServerError
			}
			// Tag the span before it freezes: a request that ran (or ended)
			// inside a degraded read-only window is marked so its retained
			// trace and slow-query record say so.
			degraded := s.degraded.Load()
			if degraded {
				span.SetBool("degraded", true)
			}
			span.SetInt("http.status_code", int64(sw.status))
			span.End()
			elapsed := time.Since(start)
			s.metrics.Observe(endpoint, sw.status, elapsed, rid)
			if strings.HasPrefix(endpoint, "/v1/") {
				errStatus := sw.status >= 500
				s.slo.Observe(endpoint, elapsed, errStatus)
				var ex any
				if holder != nil && holder.ex != nil {
					ex = holder.ex
				}
				class, retained := s.recorder.Offer(obs.CompletedRequest{
					RequestID: rid,
					TraceID:   traceID,
					Endpoint:  endpoint,
					Status:    sw.status,
					Error:     errStatus,
					Degraded:  degraded,
					Start:     start,
					Duration:  elapsed,
					Root:      span,
					Explain:   ex,
				})
				tail := retained && class != obs.TraceBaseline
				if tail {
					// A retained slow/errored trace is exactly the evidence a
					// profile explains; the profiler's token bucket absorbs
					// tail storms.
					s.profiler.Trigger(traceID, rid, string(class))
				}
				if s.exporter != nil {
					// Head sampling is deterministic in the trace ID, so the
					// whole chain agrees without coordination; errors,
					// recorder-retained tails and caller-sampled traces export
					// unconditionally.
					export := errStatus || tail ||
						(tperr == nil && tc.Sampled()) ||
						obs.SampleTraceID(span.TraceID(), s.cfg.TraceSample)
					if export {
						// The span is ended and frozen; the exporter snapshots
						// it on its own goroutine, so this is just a channel
						// send on the request path.
						s.exporter.Offer(obs.ExportTrace{Root: span, Start: start, Err: errStatus})
					}
				}
			}
			if limited && s.cfg.SlowQuery != nil && elapsed >= *s.cfg.SlowQuery {
				snap := span.Snapshot()
				args := []any{
					"request_id", rid,
					"trace_id", traceID,
					"endpoint", endpoint,
					"status", sw.status,
					"dur_us", elapsed.Microseconds(),
					"threshold_us", s.cfg.SlowQuery.Microseconds(),
					"trace", snap,
					// The same renderer the client and treesim-trace
					// use, so a human greps one familiar shape.
					"trace_tree", obs.RenderSpanTree(snap),
				}
				if holder != nil && holder.ex != nil {
					args = append(args, "explain", holder.ex)
				}
				s.log.Warn("slow query", args...)
			}
			s.log.Info("request",
				"request_id", rid,
				"trace_id", traceID,
				"method", r.Method,
				"path", r.URL.Path,
				"status", sw.status,
				"dur_us", elapsed.Microseconds(),
				"remote", r.RemoteAddr)
		}()

		if r.Body != nil {
			r.Body = http.MaxBytesReader(sw, r.Body, s.cfg.MaxBodyBytes)
		}
		if limited {
			if !s.sem.tryAcquire() {
				sw.Header().Set("Retry-After", "1")
				writeError(sw, http.StatusTooManyRequests, ErrCodeOverloaded,
					fmt.Sprintf("server saturated (%d queries in flight); retry", cap(s.sem)), rid)
				return
			}
			defer s.sem.release()
			if s.cfg.QueryTimeout > 0 {
				ctx, cancel := context.WithTimeout(r.Context(), s.cfg.QueryTimeout)
				defer cancel()
				r = r.WithContext(ctx)
			}
		}
		h(sw, r)
	})
}

// writeJSON writes v as the JSON body with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// writeError writes the uniform error envelope: a stable machine-readable
// code, the human-readable message, and the request id.
func writeError(w http.ResponseWriter, status int, code, msg, rid string) {
	writeJSON(w, status, ErrorResponse{Error: ErrorDetail{Code: code, Message: msg, RequestID: rid}})
}

// requestID returns the ID the middleware assigned to this response.
func requestID(w http.ResponseWriter) string { return w.Header().Get("X-Request-Id") }

// decodeJSON parses the request body into v, returning a client-facing
// error message on failure.
func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("invalid JSON body: %v", err)
	}
	return nil
}
