package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// statusWriter records the status code for logging and metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.status = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

// instrument wraps a handler with the server's middleware stack: request
// ID assignment, panic recovery, structured logging, metrics, body-size
// capping and — for query endpoints (limited=true) — semaphore admission
// with 429 backpressure and the per-request deadline.
func (s *Server) instrument(endpoint string, limited bool, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rid := r.Header.Get("X-Request-Id")
		if rid == "" {
			rid = fmt.Sprintf("r%08x", s.reqSeq.Add(1))
		}
		w.Header().Set("X-Request-Id", rid)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}

		defer func() {
			if p := recover(); p != nil {
				s.log.Error("handler panic", "request_id", rid, "endpoint", endpoint, "panic", p)
				if !sw.wrote {
					writeError(sw, http.StatusInternalServerError, "internal error", rid)
				}
				sw.status = http.StatusInternalServerError
			}
			s.metrics.Observe(endpoint, sw.status, time.Since(start))
			s.log.Info("request",
				"request_id", rid,
				"method", r.Method,
				"path", r.URL.Path,
				"status", sw.status,
				"dur_us", time.Since(start).Microseconds(),
				"remote", r.RemoteAddr)
		}()

		if r.Body != nil {
			r.Body = http.MaxBytesReader(sw, r.Body, s.cfg.MaxBodyBytes)
		}
		if limited {
			if !s.sem.tryAcquire() {
				sw.Header().Set("Retry-After", "1")
				writeError(sw, http.StatusTooManyRequests,
					fmt.Sprintf("server saturated (%d queries in flight); retry", cap(s.sem)), rid)
				return
			}
			defer s.sem.release()
			if s.cfg.QueryTimeout > 0 {
				ctx, cancel := context.WithTimeout(r.Context(), s.cfg.QueryTimeout)
				defer cancel()
				r = r.WithContext(ctx)
			}
		}
		h(sw, r)
	})
}

// writeJSON writes v as the JSON body with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// writeError writes the standard error body.
func writeError(w http.ResponseWriter, status int, msg, rid string) {
	writeJSON(w, status, ErrorResponse{Error: msg, RequestID: rid})
}

// requestID returns the ID the middleware assigned to this response.
func requestID(w http.ResponseWriter) string { return w.Header().Get("X-Request-Id") }

// decodeJSON parses the request body into v, returning a client-facing
// error message on failure.
func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("invalid JSON body: %v", err)
	}
	return nil
}
