package server

import (
	"bufio"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"

	"treesim/internal/search"
)

// TestRequestIDAssigned: every response carries a generated X-Request-Id
// in the server's r%08x format, distinct across requests, and the access
// log records it.
func TestRequestIDAssigned(t *testing.T) {
	var buf syncBuffer
	cfg := Config{Logger: slog.New(slog.NewJSONHandler(&buf, nil))}
	_, hs, _ := newTestServer(t, cfg, 10, 60)

	idRe := regexp.MustCompile(`^r[0-9a-f]{8}$`)
	seen := map[string]bool{}
	for i := 0; i < 3; i++ {
		resp, err := http.Get(hs.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		rid := resp.Header.Get("X-Request-Id")
		if !idRe.MatchString(rid) {
			t.Fatalf("generated request ID %q does not match r%%08x", rid)
		}
		if seen[rid] {
			t.Fatalf("request ID %q repeated", rid)
		}
		seen[rid] = true
	}

	// Each access-log record carries the ID of a response we saw.
	logged := map[string]bool{}
	sc := bufio.NewScanner(strings.NewReader(buf.String()))
	for sc.Scan() {
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatal(err)
		}
		if rec["msg"] == "request" {
			rid, _ := rec["request_id"].(string)
			logged[rid] = true
		}
	}
	for rid := range seen {
		if !logged[rid] {
			t.Errorf("request ID %q missing from the access log", rid)
		}
	}
}

// TestRequestIDPropagated: a caller-supplied X-Request-Id is preserved on
// the response and in the log instead of a generated one.
func TestRequestIDPropagated(t *testing.T) {
	var buf syncBuffer
	cfg := Config{Logger: slog.New(slog.NewJSONHandler(&buf, nil))}
	_, hs, _ := newTestServer(t, cfg, 10, 61)

	req, _ := http.NewRequest("GET", hs.URL+"/healthz", nil)
	req.Header.Set("X-Request-Id", "upstream-77")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "upstream-77" {
		t.Errorf("response request ID %q, want the caller's upstream-77", got)
	}
	if !strings.Contains(buf.String(), `"request_id":"upstream-77"`) {
		t.Error("caller's request ID missing from the access log")
	}
}

// TestPanicRecovery: a panicking handler yields a 500 JSON error carrying
// the request ID, the connection survives, and the panic is both logged
// and counted as an endpoint error.
func TestPanicRecovery(t *testing.T) {
	var buf syncBuffer
	cfg := Config{Logger: slog.New(slog.NewJSONHandler(&buf, nil))}
	ix := search.NewIndex(testDataset(5, 62), search.NewBiBranch())
	s := New(ix, cfg)
	mux := http.NewServeMux()
	mux.Handle("GET /boom", s.instrument("/boom", false, func(http.ResponseWriter, *http.Request) {
		panic("kaboom")
	}))
	hs := httptest.NewServer(mux)
	defer hs.Close()

	resp, err := http.Get(hs.URL + "/boom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", resp.StatusCode)
	}
	var e ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatalf("error body: %v", err)
	}
	if e.Error.Code != ErrCodeInternal || e.Error.Message == "" || e.Error.RequestID == "" {
		t.Errorf("error body incomplete: %+v", e)
	}
	if e.Error.RequestID != resp.Header.Get("X-Request-Id") {
		t.Errorf("body request ID %q != header %q", e.Error.RequestID, resp.Header.Get("X-Request-Id"))
	}
	if !strings.Contains(buf.String(), "kaboom") {
		t.Error("panic value missing from the log")
	}
	if got := s.Metrics().Snapshot().Endpoints["/boom"].Errors; got != 1 {
		t.Errorf("endpoint error count %d, want 1", got)
	}
}
