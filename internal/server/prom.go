package server

import (
	"io"
	"sort"
	"strconv"
	"time"

	"treesim/internal/obs"
)

// Prometheus text exposition of the /metrics registry. The JSON document
// (the default) and this rendering are two views of the same counters:
// the JSON form stays the human/debug view, this one is what a Prometheus
// server scrapes (Accept: text/plain or ?format=prom).

// latencySecondsBounds is latencyBounds converted once to seconds, the
// base unit both expositions use for bucket labels.
var latencySecondsBounds = func() []float64 {
	out := make([]float64, len(latencyBounds))
	for i, d := range latencyBounds {
		out[i] = d.Seconds()
	}
	return out
}()

// PromGauges carries the live values the server owns (the Metrics
// registry only holds counters); the caller fills it per scrape.
type PromGauges struct {
	IndexSize       int
	IndexLive       int
	IndexFilter     string
	InFlight        int
	MaxInFlight     int
	Inserts         uint64
	Deletes         uint64
	Snapshots       uint64
	WALRecords      uint64
	WALReplayed     uint64
	WALSegments     int
	WALBytes        int64
	SnapCRCFailures uint64
	Degraded        bool
	DegradedReason  string
	DegradedTotal   uint64
	// Storage-engine gauges and counters (see search.Index.StoreStats).
	StoreEpoch       uint64
	StoreSegments    int
	StoreMemtableLen int
	StoreTombstones  int
	StoreSeals       uint64
	StoreCompactions uint64
	// Runtime telemetry, the SLO burn-rate table, the flight recorder's
	// retention stats, and the trace-export/tail-profiler health —
	// sampled by the handler per scrape.
	Runtime  obs.RuntimeStats
	SLO      obs.SLOReport
	Recorder obs.RecorderStats
	Exporter obs.ExporterStats
	Profiler obs.ProfilerStats
}

// WriteProm renders the whole registry in Prometheus text exposition
// format (version 0.0.4): HELP/TYPE headed families, per-endpoint
// counters and latency histograms, the accessed-fraction histogram, and
// the stage/WAL/snapshot duration histograms.
func (m *Metrics) WriteProm(w io.Writer, g PromGauges) error {
	pw := obs.NewPromWriter(w)

	bi := Build()
	pw.Family("treesim_build_info", "gauge", "Constant 1, labeled with the binary's build identity.").
		Sample(obs.Labels{
			"go_version": bi.GoVersion,
			"revision":   bi.Revision,
			"dirty":      strconv.FormatBool(bi.Dirty),
		}, 1)
	pw.Family("treesim_uptime_seconds", "gauge", "Seconds since the server started.").
		Sample(nil, time.Since(m.start).Seconds())
	pw.Family("treesim_index_size", "gauge", "Id high-water mark of the live index (deleted ids stay burned).").
		Sample(nil, float64(g.IndexSize))
	pw.Family("treesim_index_live", "gauge", "Visible trees in the live index (tombstoned excluded).").
		Sample(nil, float64(g.IndexLive))
	pw.Family("treesim_index_info", "gauge", "Constant 1, labeled with the active filter.").
		Sample(obs.Labels{"filter": g.IndexFilter}, 1)
	pw.Family("treesim_store_epoch", "gauge", "Storage-engine logical-state counter; advances on every insert, delete, seal and compaction.").
		Sample(nil, float64(g.StoreEpoch))
	pw.Family("treesim_store_segments", "gauge", "Sealed immutable segments (memtable excluded).").
		Sample(nil, float64(g.StoreSegments))
	pw.Family("treesim_store_memtable_trees", "gauge", "Trees in the mutable memtable segment.").
		Sample(nil, float64(g.StoreMemtableLen))
	pw.Family("treesim_store_tombstones", "gauge", "Unresolved tombstones (resolved at the next compaction).").
		Sample(nil, float64(g.StoreTombstones))
	pw.Family("treesim_store_seals_total", "counter", "Memtable seals since process start.").
		Sample(nil, float64(g.StoreSeals))
	pw.Family("treesim_store_compactions_total", "counter", "Completed compactions since process start.").
		Sample(nil, float64(g.StoreCompactions))
	pw.Family("treesim_inflight_requests", "gauge", "Query requests currently admitted.").
		Sample(nil, float64(g.InFlight))
	pw.Family("treesim_max_inflight_requests", "gauge", "Admission limit for concurrent queries.").
		Sample(nil, float64(g.MaxInFlight))
	pw.Family("treesim_inserts_total", "counter", "Accepted tree inserts.").
		Sample(nil, float64(g.Inserts))
	pw.Family("treesim_deletes_total", "counter", "Accepted tree deletes.").
		Sample(nil, float64(g.Deletes))
	pw.Family("treesim_snapshots_total", "counter", "Snapshots published.").
		Sample(nil, float64(g.Snapshots))
	pw.Family("treesim_wal_records_total", "counter", "WAL records appended by this process.").
		Sample(nil, float64(g.WALRecords))
	pw.Family("treesim_wal_replayed_records", "gauge", "WAL records replayed during startup recovery.").
		Sample(nil, float64(g.WALReplayed))
	pw.Family("treesim_snapshot_crc_failures_total", "counter", "Snapshots that failed checksum self-verification.").
		Sample(nil, float64(g.SnapCRCFailures))
	pw.Family("treesim_wal_segments", "gauge", "Segment files in the live write-ahead log.").
		Sample(nil, float64(g.WALSegments))
	pw.Family("treesim_wal_bytes", "gauge", "Total valid bytes across live WAL segments; growth means snapshots are falling behind the write rate.").
		Sample(nil, float64(g.WALBytes))
	degFam := pw.Family("treesim_degraded", "gauge", "1 while the server is in degraded read-only mode (durable writes failing), labeled with the entry reason.")
	if g.Degraded {
		degFam.Sample(obs.Labels{"reason": g.DegradedReason}, 1)
	} else {
		degFam.Sample(nil, 0)
	}
	pw.Family("treesim_degraded_total", "counter", "Times the server entered degraded read-only mode.").
		Sample(nil, float64(g.DegradedTotal))

	// Runtime telemetry.
	pw.Family("treesim_goroutines", "gauge", "Live goroutines.").
		Sample(nil, float64(g.Runtime.Goroutines))
	pw.Family("treesim_heap_bytes", "gauge", "Bytes of live heap objects.").
		Sample(nil, float64(g.Runtime.HeapBytes))
	pw.Family("treesim_gc_cycles_total", "counter", "Completed GC cycles.").
		Sample(nil, float64(g.Runtime.GCCycles))
	pw.Family("treesim_gc_pause_seconds", "histogram", "Stop-the-world GC pause distribution since process start.").
		Histogram(nil, g.Runtime.GCPause)
	pw.Family("treesim_sched_latency_seconds", "histogram", "Scheduler latency: time goroutines spend runnable before running.").
		Histogram(nil, g.Runtime.SchedLatency)

	// SLO burn rates: bad-request ratio over the error budget (1-target),
	// per endpoint, for the fast (incident-reactive) and slow (sustained
	// spend) windows.
	pw.Family("treesim_slo_latency_objective_seconds", "gauge", "Per-request latency objective; slower requests spend error budget.").
		Sample(nil, g.SLO.LatencyObjectiveS)
	pw.Family("treesim_slo_target", "gauge", "Good-request objective in (0,1).").
		Sample(nil, g.SLO.Target)
	burn := pw.Family("treesim_slo_burn_rate", "gauge",
		"Error-budget burn rate by endpoint and window; 1 spends the budget exactly at the objective rate.")
	for _, e := range g.SLO.Endpoints {
		burn.Sample(obs.Labels{"endpoint": e.Endpoint, "window": "fast"}, e.Fast.BurnRate)
		burn.Sample(obs.Labels{"endpoint": e.Endpoint, "window": "slow"}, e.Slow.BurnRate)
	}
	bad := pw.Family("treesim_slo_bad_requests", "gauge",
		"Requests that errored or ran past the latency objective, by endpoint, over the slow window.")
	for _, e := range g.SLO.Endpoints {
		bad.Sample(obs.Labels{"endpoint": e.Endpoint}, float64(e.Slow.Errors+e.Slow.Slow))
	}

	// Flight recorder.
	ret := pw.Family("treesim_trace_retained", "gauge", "Traces currently retained in the flight recorder, by class.")
	ret.Sample(obs.Labels{"class": "error"}, float64(g.Recorder.Errors))
	ret.Sample(obs.Labels{"class": "slow"}, float64(g.Recorder.Slow))
	ret.Sample(obs.Labels{"class": "baseline"}, float64(g.Recorder.Baseline))
	pw.Family("treesim_trace_offered_total", "counter", "Completed requests offered to the flight recorder.").
		Sample(nil, float64(g.Recorder.Offered))
	pw.Family("treesim_trace_dropped_total", "counter", "Offers dropped without snapshotting (normal requests losing the reservoir draw).").
		Sample(nil, float64(g.Recorder.Dropped))
	pw.Family("treesim_trace_threshold_seconds", "gauge", "Adaptive slow-trace retention threshold.").
		Sample(nil, float64(g.Recorder.ThresholdUS)/1e6)

	// OTLP trace export pipeline.
	pw.Family("treesim_otlp_queue_depth", "gauge", "Span trees waiting in the exporter queue.").
		Sample(nil, float64(g.Exporter.Queued))
	pw.Family("treesim_otlp_offered_total", "counter", "Span trees offered to the exporter.").
		Sample(nil, float64(g.Exporter.Offered))
	pw.Family("treesim_otlp_batches_total", "counter", "OTLP/JSON batches delivered to the collector.").
		Sample(nil, float64(g.Exporter.Batches))
	pw.Family("treesim_otlp_sent_spans_total", "counter", "Individual spans delivered to the collector.").
		Sample(nil, float64(g.Exporter.SentSpans))
	pw.Family("treesim_otlp_dropped_total", "counter", "Span trees dropped (queue full or delivery retries exhausted).").
		Sample(nil, float64(g.Exporter.Dropped))
	pw.Family("treesim_otlp_retries_total", "counter", "Batch delivery retries.").
		Sample(nil, float64(g.Exporter.Retries))
	pw.Family("treesim_otlp_batch_latency_seconds", "histogram", "Wall time from first delivery attempt to a batch's 2xx, retries included.").
		Histogram(nil, g.Exporter.BatchLatency)

	// Tail-triggered CPU profiler.
	pw.Family("treesim_profile_triggered_total", "counter", "Capture triggers from retained slow/errored traces.").
		Sample(nil, float64(g.Profiler.Triggered))
	pw.Family("treesim_profile_captured_total", "counter", "CPU profiles captured into the ring.").
		Sample(nil, float64(g.Profiler.Captured))
	pw.Family("treesim_profile_skipped_total", "counter", "Triggers absorbed by the rate limit or an in-flight capture.").
		Sample(nil, float64(g.Profiler.Skipped))
	pw.Family("treesim_profile_retained", "gauge", "Profiles currently held in the ring.").
		Sample(nil, float64(g.Profiler.Retained))

	// Per-endpoint counters and latency histograms. Rendering happens
	// under mu into the caller's buffer, mirroring Snapshot's consistency.
	m.mu.Lock()
	names := make([]string, 0, len(m.endpoints))
	for name := range m.endpoints {
		names = append(names, name)
	}
	sort.Strings(names)
	req := pw.Family("treesim_http_requests_total", "counter", "Requests finished, by endpoint.")
	for _, name := range names {
		req.Sample(obs.Labels{"endpoint": name}, float64(m.endpoints[name].requests))
	}
	errs := pw.Family("treesim_http_errors_total", "counter", "5xx responses (excluding 504), by endpoint.")
	for _, name := range names {
		errs.Sample(obs.Labels{"endpoint": name}, float64(m.endpoints[name].errors))
	}
	rej := pw.Family("treesim_http_rejected_total", "counter", "429 admission rejections, by endpoint.")
	for _, name := range names {
		rej.Sample(obs.Labels{"endpoint": name}, float64(m.endpoints[name].rejected))
	}
	tmo := pw.Family("treesim_http_timeouts_total", "counter", "504 query-deadline responses, by endpoint.")
	for _, name := range names {
		tmo.Sample(obs.Labels{"endpoint": name}, float64(m.endpoints[name].timeouts))
	}
	lat := pw.Family("treesim_http_request_duration_seconds", "histogram", "Request latency, by endpoint.")
	for _, name := range names {
		e := m.endpoints[name]
		lat.Histogram(obs.Labels{"endpoint": name}, obs.HistogramSnapshot{
			Bounds: latencySecondsBounds,
			Counts: append([]uint64(nil), e.buckets...),
			Count:  e.requests,
			Sum:    e.sum.Seconds(),
		})
	}
	// Exemplars ride as an ordinary gauge family (value = observed
	// seconds) rather than OpenMetrics `#`-syntax, so any 0.0.4 parser
	// keeps working; request_id links a bucket to GET /debug/traces/{id}.
	exf := pw.Family("treesim_request_latency_exemplar", "gauge",
		"Most recent request observed in each latency bucket; value is its latency in seconds.")
	for _, name := range names {
		e := m.endpoints[name]
		for i, ex := range e.exemplars.Snapshot() {
			if ex == nil {
				continue
			}
			le := "+Inf"
			if i < len(latencySecondsBounds) {
				le = strconv.FormatFloat(latencySecondsBounds[i], 'g', -1, 64)
			}
			exf.Sample(obs.Labels{"endpoint": name, "le": le, "request_id": ex.RequestID}, ex.Value)
		}
	}

	q := m.query
	accessed := make([]uint64, len(accessedBounds)+1)
	copy(accessed, q.accessedBuckets)
	m.mu.Unlock()

	pw.Family("treesim_queries_total", "counter", "Similarity queries served (batch inner queries counted individually).").
		Sample(nil, float64(q.count))
	pw.Family("treesim_query_verified_total", "counter", "Exact edit-distance verifications across all queries.").
		Sample(nil, float64(q.total.Verified))
	pw.Family("treesim_query_results_total", "counter", "Result rows returned across all queries.").
		Sample(nil, float64(q.total.Results))
	pw.Family("treesim_query_candidates_total", "counter", "Filter candidates across all queries.").
		Sample(nil, float64(q.total.Candidates))
	pw.Family("treesim_query_false_positives_total", "counter",
		"Verified candidates whose exact distance failed the predicate, across all queries.").
		Sample(nil, float64(q.total.FalsePositives))
	pw.Family("treesim_refine_aborted_total", "counter",
		"Verifications the band-limited DP abandoned after proving the distance exceeds the cutoff.").
		Sample(nil, float64(q.total.RefineAborted))
	pw.Family("treesim_refine_precheck_rejects_total", "counter",
		"Verifications rejected by O(n) pre-checks (size/height/label-histogram deltas) before any DP work.").
		Sample(nil, float64(q.total.PrecheckRejects))
	pw.Family("treesim_refine_dp_cells_total", "counter",
		"Dynamic-programming cells actually touched across all verifications.").
		Sample(nil, float64(q.total.DPCells))
	pw.Family("treesim_refine_dp_cells_full_total", "counter",
		"Dynamic-programming cells a full (uncut) verification of the same pairs would touch.").
		Sample(nil, float64(q.total.DPCellsFull))
	pw.Family("treesim_query_accessed_fraction", "histogram",
		"Per-query accessed fraction: share of the dataset verified with an exact distance (the paper's quality measure).").
		Histogram(nil, obs.HistogramSnapshot{
			Bounds: accessedBounds,
			Counts: accessed,
			Count:  q.count,
			Sum:    q.accessedSum,
		})

	pw.Family("treesim_filter_candidates", "histogram",
		"Per-query candidate count the filter let through to verification.").
		Histogram(nil, m.FilterCandidates.Snapshot())
	pw.Family("treesim_filter_false_positive_ratio", "histogram",
		"Per-query share of verified candidates rejected by the exact distance (queries that verified at least one).").
		Histogram(nil, m.FalsePositiveRatio.Snapshot())
	pw.Family("treesim_filter_tightness_ratio", "histogram",
		"BDist/EDist over verified pairs in the last ~10 minutes; the paper bounds it by 4(q-1)+1.").
		Histogram(nil, m.Tightness.Snapshot())
	pw.Family("treesim_refine_dp_cells_per_verification", "histogram",
		"Per-query mean DP cells paid per verification under the bounded refine engine.").
		Histogram(nil, m.DPCellsPerVerify.Snapshot())

	pw.Family("treesim_query_filter_seconds", "histogram", "Per-query filter-stage time (lower-bound computation).").
		Histogram(nil, m.QueryFilter.Snapshot())
	pw.Family("treesim_query_refine_seconds", "histogram", "Per-query refine-stage time (exact edit distances).").
		Histogram(nil, m.QueryRefine.Snapshot())
	pw.Family("treesim_wal_append_seconds", "histogram", "WAL record append time, write plus policy fsync.").
		Histogram(nil, m.WALAppend.Snapshot())
	pw.Family("treesim_wal_fsync_seconds", "histogram", "WAL fsync time per flush.").
		Histogram(nil, m.WALFsync.Snapshot())
	pw.Family("treesim_snapshot_write_seconds", "histogram", "Snapshot publication time (write, sync, verify, rename).").
		Histogram(nil, m.SnapshotWrite.Snapshot())
	pw.Family("treesim_compaction_seconds", "histogram", "Segment compaction time (merge plus filter rebuild).").
		Histogram(nil, m.Compaction.Snapshot())

	return pw.Err()
}
