package server

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// promSample is one parsed exposition line.
type promSample struct {
	name   string
	labels map[string]string
	value  float64
}

var promSampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{(.*)\})? (\S+)$`)
var promLabelRe = regexp.MustCompile(`^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$`)

// parseProm parses a Prometheus text exposition strictly: every line must
// be a well-formed HELP/TYPE comment or a sample, every sample must belong
// to a family whose HELP and TYPE appeared first, and values must parse as
// floats. It returns samples plus the family→type map.
func parseProm(t *testing.T, body string) ([]promSample, map[string]string) {
	t.Helper()
	types := make(map[string]string)
	helped := make(map[string]bool)
	var samples []promSample
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			parts := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if len(parts) != 2 || parts[0] == "" || parts[1] == "" {
				t.Fatalf("malformed HELP line %q", line)
			}
			helped[parts[0]] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.SplitN(strings.TrimPrefix(line, "# TYPE "), " ", 2)
			if len(parts) != 2 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			switch parts[1] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Fatalf("unknown metric type in %q", line)
			}
			if !helped[parts[0]] {
				t.Fatalf("TYPE before HELP for %q", parts[0])
			}
			types[parts[0]] = parts[1]
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unexpected comment line %q", line)
		}
		m := promSampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("unparseable sample line %q", line)
		}
		s := promSample{name: m[1], labels: map[string]string{}}
		if m[3] != "" {
			for _, pair := range splitPromLabels(t, m[3]) {
				lm := promLabelRe.FindStringSubmatch(pair)
				if lm == nil {
					t.Fatalf("bad label pair %q in line %q", pair, line)
				}
				s.labels[lm[1]] = lm[2]
			}
		}
		v, err := strconv.ParseFloat(m[4], 64)
		if err != nil {
			t.Fatalf("value %q in line %q: %v", m[4], line, err)
		}
		s.value = v
		family := s.name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(s.name, suf) && types[strings.TrimSuffix(s.name, suf)] == "histogram" {
				family = strings.TrimSuffix(s.name, suf)
			}
		}
		if types[family] == "" {
			t.Fatalf("sample %q has no preceding TYPE", s.name)
		}
		samples = append(samples, s)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return samples, types
}

// splitPromLabels splits `a="x",b="y"` on commas outside quotes.
func splitPromLabels(t *testing.T, s string) []string {
	t.Helper()
	var out []string
	depth := false // inside quotes
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	out = append(out, s[start:])
	return out
}

// labelsKey collapses a label set (minus le) into a map key.
func labelsKey(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k != "le" {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%s;", k, labels[k])
	}
	return b.String()
}

// checkHistograms verifies, for every histogram family and label set:
// monotone non-decreasing cumulative buckets in le order ending at +Inf,
// and _count equal to the +Inf bucket.
func checkHistograms(t *testing.T, samples []promSample, types map[string]string) {
	t.Helper()
	type series struct {
		les    []float64
		counts []float64
		count  float64
		hasCnt bool
		hasSum bool
	}
	hist := make(map[string]*series) // family + label key
	get := func(fam string, labels map[string]string) *series {
		k := fam + "|" + labelsKey(labels)
		if hist[k] == nil {
			hist[k] = &series{}
		}
		return hist[k]
	}
	for _, s := range samples {
		switch {
		case strings.HasSuffix(s.name, "_bucket") && types[strings.TrimSuffix(s.name, "_bucket")] == "histogram":
			le, err := strconv.ParseFloat(s.labels["le"], 64)
			if err != nil {
				t.Fatalf("%s: le %q: %v", s.name, s.labels["le"], err)
			}
			sr := get(strings.TrimSuffix(s.name, "_bucket"), s.labels)
			sr.les = append(sr.les, le)
			sr.counts = append(sr.counts, s.value)
		case strings.HasSuffix(s.name, "_count") && types[strings.TrimSuffix(s.name, "_count")] == "histogram":
			sr := get(strings.TrimSuffix(s.name, "_count"), s.labels)
			sr.count = s.value
			sr.hasCnt = true
		case strings.HasSuffix(s.name, "_sum") && types[strings.TrimSuffix(s.name, "_sum")] == "histogram":
			get(strings.TrimSuffix(s.name, "_sum"), s.labels).hasSum = true
		}
	}
	if len(hist) == 0 {
		t.Fatal("no histogram series found")
	}
	for key, sr := range hist {
		if len(sr.les) == 0 {
			t.Errorf("%s: histogram series with no buckets", key)
			continue
		}
		if !sr.hasCnt || !sr.hasSum {
			t.Errorf("%s: missing _count/_sum (count %v, sum %v)", key, sr.hasCnt, sr.hasSum)
		}
		for i := 1; i < len(sr.les); i++ {
			if sr.les[i] <= sr.les[i-1] {
				t.Errorf("%s: le bounds not increasing: %v", key, sr.les)
			}
			if sr.counts[i] < sr.counts[i-1] {
				t.Errorf("%s: cumulative counts decrease at le=%v: %v", key, sr.les[i], sr.counts)
			}
		}
		last := len(sr.les) - 1
		if !math.IsInf(sr.les[last], 1) {
			t.Errorf("%s: last bucket le=%v, want +Inf", key, sr.les[last])
		}
		if sr.counts[last] != sr.count {
			t.Errorf("%s: +Inf bucket %v != _count %v", key, sr.counts[last], sr.count)
		}
	}
}

// TestMetricsPromExposition: ?format=prom returns valid Prometheus text —
// every line parses, every family has HELP/TYPE, histograms are cumulative
// with consistent _count/_sum — and the counters reflect the traffic.
func TestMetricsPromExposition(t *testing.T) {
	_, hs, ts := newTestServer(t, quietConfig(), 40, 41)
	for i := 0; i < 3; i++ {
		if code := postJSON(t, hs.URL+"/v1/knn", KNNRequest{Tree: ts[i].String(), K: 2}, nil); code != 200 {
			t.Fatalf("knn status %d", code)
		}
	}
	postJSON(t, hs.URL+"/v1/range", RangeRequest{Tree: ts[0].String(), Tau: 1}, nil)

	resp, err := http.Get(hs.URL + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q, want text/plain", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	samples, types := parseProm(t, string(body))
	checkHistograms(t, samples, types)

	byName := func(name string, labels map[string]string) (float64, bool) {
		for _, s := range samples {
			if s.name != name {
				continue
			}
			match := true
			for k, v := range labels {
				if s.labels[k] != v {
					match = false
					break
				}
			}
			if match {
				return s.value, true
			}
		}
		return 0, false
	}
	if v, ok := byName("treesim_http_requests_total", map[string]string{"endpoint": "/v1/knn"}); !ok || v != 3 {
		t.Errorf("knn requests %v (found %v), want 3", v, ok)
	}
	if v, ok := byName("treesim_queries_total", nil); !ok || v != 4 {
		t.Errorf("queries_total %v (found %v), want 4", v, ok)
	}
	if v, ok := byName("treesim_index_size", nil); !ok || v != 40 {
		t.Errorf("index_size %v (found %v), want 40", v, ok)
	}
	if v, ok := byName("treesim_index_info", map[string]string{"filter": "BiBranch"}); !ok || v != 1 {
		t.Errorf("index_info{filter=BiBranch} %v (found %v), want 1", v, ok)
	}
	if _, ok := byName("treesim_wal_fsync_seconds_count", nil); !ok {
		t.Error("wal_fsync_seconds histogram missing")
	}
	if v, ok := byName("treesim_query_refine_seconds_count", nil); !ok || v != 4 {
		t.Errorf("query_refine_seconds_count %v (found %v), want 4", v, ok)
	}
	if v, ok := byName("treesim_query_accessed_fraction_count", nil); !ok || v != 4 {
		t.Errorf("accessed_fraction count %v (found %v), want 4", v, ok)
	}

	// Bounded refine: the counter families must exist, and the queries
	// above verified something, so touched cells are positive and never
	// exceed the full-DP cost.
	cells, ok := byName("treesim_refine_dp_cells_total", nil)
	if !ok || cells <= 0 {
		t.Errorf("refine_dp_cells_total %v (found %v), want > 0", cells, ok)
	}
	full, ok := byName("treesim_refine_dp_cells_full_total", nil)
	if !ok || full < cells {
		t.Errorf("refine_dp_cells_full_total %v (found %v), want >= %v", full, ok, cells)
	}
	if _, ok := byName("treesim_refine_aborted_total", nil); !ok {
		t.Error("refine_aborted_total missing")
	}
	if _, ok := byName("treesim_refine_precheck_rejects_total", nil); !ok {
		t.Error("refine_precheck_rejects_total missing")
	}
	if _, ok := byName("treesim_refine_dp_cells_per_verification_count", nil); !ok {
		t.Error("refine_dp_cells_per_verification histogram missing")
	}

	// Runtime telemetry: gauges carry live values and both runtime
	// histograms parse through the strict checker above.
	if v, ok := byName("treesim_goroutines", nil); !ok || v < 1 {
		t.Errorf("goroutines %v (found %v), want >= 1", v, ok)
	}
	if v, ok := byName("treesim_heap_bytes", nil); !ok || v <= 0 {
		t.Errorf("heap_bytes %v (found %v), want > 0", v, ok)
	}
	if _, ok := byName("treesim_gc_pause_seconds_count", nil); !ok {
		t.Error("gc_pause_seconds histogram missing")
	}
	if _, ok := byName("treesim_sched_latency_seconds_count", nil); !ok {
		t.Error("sched_latency_seconds histogram missing")
	}

	// SLO families: the objectives render, and the four /v1 requests show
	// up as burn-rate rows for both windows.
	if v, ok := byName("treesim_slo_target", nil); !ok || v != 0.99 {
		t.Errorf("slo_target %v (found %v), want 0.99", v, ok)
	}
	for _, win := range []string{"fast", "slow"} {
		if _, ok := byName("treesim_slo_burn_rate", map[string]string{"endpoint": "/v1/knn", "window": win}); !ok {
			t.Errorf("no slo_burn_rate{endpoint=/v1/knn,window=%s} sample", win)
		}
	}

	// Flight recorder families: 4 requests into an empty ring are all
	// offered, the per-class retained gauges exist, and the exemplar
	// family links buckets to request IDs with a parseable le label.
	if v, ok := byName("treesim_trace_offered_total", nil); !ok || v < 4 {
		t.Errorf("trace_offered_total %v (found %v), want >= 4", v, ok)
	}
	for _, class := range []string{"error", "slow", "baseline"} {
		if _, ok := byName("treesim_trace_retained", map[string]string{"class": class}); !ok {
			t.Errorf("no trace_retained{class=%s} sample", class)
		}
	}
	foundEx := false
	for _, s := range samples {
		if s.name != "treesim_request_latency_exemplar" {
			continue
		}
		foundEx = true
		if !strings.HasPrefix(s.labels["request_id"], "r") {
			t.Errorf("exemplar request_id %q not a request id", s.labels["request_id"])
		}
		if _, err := strconv.ParseFloat(s.labels["le"], 64); err != nil {
			t.Errorf("exemplar le %q does not parse: %v", s.labels["le"], err)
		}
		if s.value < 0 {
			t.Errorf("exemplar value %v negative", s.value)
		}
	}
	if !foundEx {
		t.Error("no treesim_request_latency_exemplar samples after traffic")
	}
}

// TestMetricsContentNegotiation: the Accept header switches the
// representation, the default stays JSON, and ?format=json forces JSON
// even for text-accepting clients.
func TestMetricsContentNegotiation(t *testing.T) {
	_, hs, _ := newTestServer(t, quietConfig(), 10, 42)

	get := func(accept, query string) string {
		req, _ := http.NewRequest("GET", hs.URL+"/metrics"+query, nil)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		return resp.Header.Get("Content-Type")
	}
	if ct := get("", ""); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("default content type %q, want JSON", ct)
	}
	if ct := get("text/plain", ""); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Accept: text/plain content type %q, want prom text", ct)
	}
	if ct := get("application/json, text/plain", ""); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("JSON-accepting client got %q", ct)
	}
	if ct := get("text/plain", "?format=json"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("?format=json overridden by Accept: got %q", ct)
	}
}

// TestBucketLabelsParse: every bucket label in the JSON document is
// "le_<float>" where <float> round-trips through strconv.ParseFloat — the
// label-hygiene contract shared with the Prometheus le values.
func TestBucketLabelsParse(t *testing.T) {
	_, hs, ts := newTestServer(t, quietConfig(), 20, 43)
	postJSON(t, hs.URL+"/v1/knn", KNNRequest{Tree: ts[0].String(), K: 2}, nil)

	var snap Snapshot
	if code := getJSON(t, hs.URL+"/metrics", &snap); code != 200 {
		t.Fatalf("metrics status %d", code)
	}
	check := func(where string, buckets map[string]uint64) {
		t.Helper()
		if len(buckets) == 0 {
			t.Errorf("%s: no buckets", where)
		}
		for label := range buckets {
			num, ok := strings.CutPrefix(label, "le_")
			if !ok {
				t.Errorf("%s: label %q lacks le_ prefix", where, label)
				continue
			}
			if _, err := strconv.ParseFloat(num, 64); err != nil {
				t.Errorf("%s: label %q does not parse as float: %v", where, label, err)
			}
		}
	}
	check("endpoint latency", snap.Endpoints["/v1/knn"].Buckets)
	check("accessed fraction", snap.Queries.AccessedBuckets)
	check("wal_fsync", snap.WALFsyncSeconds.Buckets)
	check("query_filter", snap.QueryFilterSeconds.Buckets)
	check("snapshot_write", snap.SnapshotWriteSeconds.Buckets)
}
