// Package server puts the filter-and-refine similarity-search engine of
// internal/search behind a long-lived, concurrent HTTP/JSON service — the
// serve-path the paper's binary branch filter was designed for: a cheap
// lower bound gating the expensive edit-distance verification, now shared
// by many clients against one live index.
//
// Endpoints:
//
//	POST /v1/knn         k nearest neighbors of a query tree
//	POST /v1/range       all indexed trees within edit distance tau
//	POST /v1/dist        exact distance between two ad-hoc trees
//	POST /v1/batch       many knn/range queries in one request
//	POST   /v1/trees       insert a tree into the live index
//	GET    /v1/trees/{id}  fetch an indexed tree
//	DELETE /v1/trees/{id}  tombstone an indexed tree
//	GET    /healthz        liveness (always 200 while the process runs)
//	GET    /readyz         readiness (503 while draining)
//	GET    /metrics        counters, latency histograms, accessed-fraction
//
// The server owns the index, whose segmented store synchronizes itself:
// queries read lock-free epoch snapshots while inserts fill a memtable,
// deletes tombstone, and background compactions merge sealed segments.
// The server admits at most Config.MaxInFlight queries at once (429
// beyond that), bounds each query with a context deadline, logs every
// request with a request ID, persists periodic snapshots through the
// internal/search codec, and drains in-flight queries before writing a
// final snapshot on shutdown.
package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"treesim/internal/faultfs"
	"treesim/internal/obs"
	"treesim/internal/qlog"
	"treesim/internal/search"
	"treesim/internal/wal"
)

// Config tunes the server; the zero value gets sensible defaults.
type Config struct {
	// MaxInFlight caps concurrently executing query requests; excess
	// requests are rejected with 429. Default 64.
	MaxInFlight int
	// QueryTimeout bounds one query request's work; exceeding it returns
	// 504. Default 10s; negative disables.
	QueryTimeout time.Duration
	// MaxBodyBytes caps request body size. Default 8 MiB.
	MaxBodyBytes int64
	// MaxBatch caps the number of trees in one /v1/batch request.
	// Default 256.
	MaxBatch int
	// SnapshotPath, when set, is where the index is persisted (written
	// atomically: temp file, fsync, checksum verification, rename,
	// directory fsync). Empty disables persistence.
	SnapshotPath string
	// WALPath, when set, enables the write-ahead log: every accepted
	// insert is appended (and fsynced per WALSync) before the response
	// acknowledges it, and Recover replays the log at startup. Empty
	// means inserts between snapshots die with the process.
	WALPath string
	// WALSync picks the log's fsync policy: wal.SyncAlways (the zero
	// value — acknowledged inserts survive power loss) or wal.SyncNever
	// (survive a process crash only).
	WALSync wal.SyncPolicy
	// WALMaxBytes rotates the write-ahead log into a new segment file
	// once the active one reaches this size; whole covered segments are
	// deleted after snapshots instead of rewriting the log. 0 means the
	// 64 MiB default; negative disables rotation.
	WALMaxBytes int64
	// SnapshotKeep is how many snapshot generations to retain: the
	// current file plus SnapshotKeep-1 predecessors (<path>.1 is the
	// newest predecessor). Recovery falls back generation by generation
	// when the newest is corrupt, replaying the correspondingly longer
	// WAL suffix — the WAL is only trimmed below the oldest retained
	// generation's cut. 0 means 1 (no predecessors).
	SnapshotKeep int
	// DegradedProbeInterval is the base wait between durability probes
	// while the server is in degraded read-only mode (a failed WAL append
	// or snapshot write); each wait is jittered around it. 0 means 1s.
	DegradedProbeInterval time.Duration
	// FS is the filesystem the snapshot and WAL paths write through. Nil
	// means the real OS; fault-injection harnesses (chaos tests, disk
	// fault drills) pass a faultfs.Injector instead.
	FS faultfs.FS
	// SnapshotInterval is how often the snapshot loop checks for new
	// inserts to persist. Default 1m; negative disables the periodic
	// loop (the final shutdown snapshot still happens).
	SnapshotInterval time.Duration
	// IncludeTrees selects whether query results carry the matched
	// trees' text encodings (default true via zero-value trickery: set
	// OmitTrees to leave them out).
	OmitTrees bool
	// SlowQuery, when non-nil, enables the slow-query log: any request to
	// a query endpoint whose total time meets or exceeds the threshold
	// logs its full span tree plus the query's EXPLAIN record (filter
	// quality: candidates, false positives, bound distribution). A pointer
	// so that *SlowQuery == 0 ("log every query") stays distinct from the
	// nil default ("disabled").
	SlowQuery *time.Duration
	// QueryLog, when non-nil, records served knn/range queries (including
	// batch inner queries) to a sampled, size-rotated JSONL workload log
	// for offline replay by cmd/treesim-analyze. The server never fails a
	// query over a recording error. The caller owns the writer's lifetime
	// (close it after Shutdown).
	QueryLog *qlog.Writer
	// TraceRing sizes the flight recorder: a ring of completed request
	// traces retained by tail-based sampling (every errored request, every
	// request slower than an adaptive latency quantile, plus a reservoir
	// of normal baselines), browsable at GET /debug/traces. 0 means 256;
	// negative disables the recorder entirely.
	TraceRing int
	// SLOLatency is the per-request latency objective for the SLO layer:
	// a /v1/* request slower than this spends error budget even when it
	// succeeds. 0 means 100ms.
	SLOLatency time.Duration
	// SLOTarget is the availability objective in (0,1): the fraction of
	// /v1/* requests that must be good (no 5xx, within SLOLatency) for
	// the burn rate on GET /debug/slo and /metrics to read 1.0. 0 means
	// 0.99.
	SLOTarget float64
	// OTLPEndpoint, when set, enables the trace exporter: completed /v1/*
	// span trees are batched as OTLP/JSON and POSTed there (a collector's
	// /v1/traces URL). Empty disables export entirely.
	OTLPEndpoint string
	// TraceSample is the head-sampling rate in [0,1] for exported traces.
	// Errored requests, flight-recorder-retained tails, and requests whose
	// inbound traceparent carries the sampled flag are always exported;
	// this rate applies to everything else. 0 exports only those classes.
	TraceSample float64
	// ProfileEvery is the tail profiler's token refill interval: at most
	// one CPU profile capture per interval when the flight recorder
	// retains a slow or errored trace. 0 means 1m; negative disables the
	// profiler.
	ProfileEvery time.Duration
	// ProfileCapture is the CPU profile duration per capture. 0 means
	// 500ms.
	ProfileCapture time.Duration
	// Logger receives structured request logs. Default: slog text
	// handler on stderr.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight == 0 {
		c.MaxInFlight = 64
	}
	if c.QueryTimeout == 0 {
		c.QueryTimeout = 10 * time.Second
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 256
	}
	if c.SnapshotInterval == 0 {
		c.SnapshotInterval = time.Minute
	}
	if c.WALMaxBytes == 0 {
		c.WALMaxBytes = 64 << 20
	}
	if c.SnapshotKeep <= 0 {
		c.SnapshotKeep = 1
	}
	if c.DegradedProbeInterval <= 0 {
		c.DegradedProbeInterval = time.Second
	}
	if c.FS == nil {
		c.FS = faultfs.OS
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}
	return c
}

// Server serves similarity queries over one live index.
type Server struct {
	cfg      Config
	ix       *search.Index
	log      *slog.Logger
	metrics  *Metrics
	sem      limiter
	mux      *http.ServeMux
	recorder *obs.Recorder     // flight recorder; nil when Config.TraceRing < 0
	slo      *obs.SLOTracker   // per-endpoint RED counters and burn rates
	exporter *obs.Exporter     // OTLP/JSON trace export; nil when Config.OTLPEndpoint == ""
	profiler *obs.TailProfiler // tail-triggered CPU profiles; nil when disabled

	ready     atomic.Bool   // readyz: accepting traffic
	reqSeq    atomic.Uint64 // request-ID counter
	inserts   atomic.Uint64 // total inserts accepted
	deletes   atomic.Uint64 // total deletes accepted
	saved     atomic.Uint64 // value of inserts+deletes at the last snapshot
	snapshots atomic.Uint64 // snapshots written

	// Durability state (see durability.go). fs is Config.FS resolved:
	// the filesystem the snapshot and WAL paths write through.
	fs             faultfs.FS
	wal            *wal.Log
	walMu          sync.Mutex    // makes (assign position, WAL append, apply) atomic
	walRecords     atomic.Uint64 // records appended by this process
	walReplayed    atomic.Uint64 // records replayed at startup
	snapCRCFail    atomic.Uint64 // snapshots that failed checksum self-verification
	recovering     atomic.Bool   // Recover in progress (readyz: 503)
	replayProgress atomic.Uint64 // records applied so far during Recover

	// Degraded read-only mode (see degraded.go): a failed durable write
	// flips degraded on; writes get 503 not_durable while queries keep
	// serving; a jittered prober clears it when the disk heals.
	degraded       atomic.Bool
	degradedTotal  atomic.Uint64
	degradedMu     sync.Mutex
	degradedReason string // under degradedMu
	probing        bool   // under degradedMu: prober goroutine running
	closing        bool   // under degradedMu: Shutdown begun, no new probers

	// snapCuts are the WAL offsets captured at the last SnapshotKeep
	// published snapshots, oldest first (under snapMu). The WAL only trims
	// below snapCuts[0] once the ring is full, so every retained snapshot
	// generation stays recoverable: older generation + longer WAL suffix.
	snapCuts []int64

	httpSrv  *http.Server
	ln       net.Listener
	bg       sync.WaitGroup
	stopSnap chan struct{}
	snapOnce sync.Once
	snapMu   sync.Mutex // serializes snapshot writes
}

// New wraps a built index in a server. The index is served as-is; build or
// load it first (see cmd/treesimd).
func New(ix *search.Index, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		ix:       ix,
		log:      cfg.Logger,
		metrics:  NewMetrics(),
		sem:      newLimiter(cfg.MaxInFlight),
		fs:       cfg.FS,
		stopSnap: make(chan struct{}),
		slo:      obs.NewSLOTracker(obs.SLOConfig{Latency: cfg.SLOLatency, Target: cfg.SLOTarget}),
	}
	if cfg.TraceRing >= 0 {
		s.recorder = obs.NewRecorder(obs.RecorderConfig{Capacity: cfg.TraceRing})
	}
	if cfg.OTLPEndpoint != "" {
		s.exporter = obs.NewExporter(obs.ExporterConfig{
			Endpoint: cfg.OTLPEndpoint,
			Logger:   cfg.Logger,
		})
	}
	// The profiler rides on the recorder's verdicts; without retained
	// tails nothing ever triggers it.
	if s.recorder != nil && cfg.ProfileEvery >= 0 {
		s.profiler = obs.NewTailProfiler(obs.ProfilerConfig{
			Every:   cfg.ProfileEvery,
			Capture: cfg.ProfileCapture,
		})
	}
	s.mux = http.NewServeMux()
	s.mux.Handle("POST /v1/knn", s.instrument("/v1/knn", true, s.handleKNN))
	s.mux.Handle("POST /v1/range", s.instrument("/v1/range", true, s.handleRange))
	s.mux.Handle("POST /v1/dist", s.instrument("/v1/dist", true, s.handleDist))
	s.mux.Handle("POST /v1/batch", s.instrument("/v1/batch", true, s.handleBatch))
	s.mux.Handle("POST /v1/trees", s.instrument("/v1/trees", true, s.handleInsert))
	s.mux.Handle("GET /v1/trees/{id}", s.instrument("/v1/trees/{id}", false, s.handleGetTree))
	s.mux.Handle("DELETE /v1/trees/{id}", s.instrument("/v1/trees/{id}", true, s.handleDelete))
	s.mux.Handle("GET /healthz", s.instrument("/healthz", false, s.handleHealthz))
	s.mux.Handle("GET /readyz", s.instrument("/readyz", false, s.handleReadyz))
	s.mux.Handle("GET /metrics", s.instrument("/metrics", false, s.handleMetrics))
	s.mux.Handle("GET /version", s.instrument("/version", false, s.handleVersion))
	// Debug surfaces (see debug.go) answer loopback callers only: retained
	// traces carry full query trees and the SLO table is operator-facing.
	s.mux.Handle("GET /debug/traces", s.instrument("/debug/traces", false, s.loopbackOnly(s.handleDebugTraces)))
	s.mux.Handle("GET /debug/traces/{id}", s.instrument("/debug/traces/{id}", false, s.loopbackOnly(s.handleDebugTrace)))
	s.mux.Handle("GET /debug/slo", s.instrument("/debug/slo", false, s.loopbackOnly(s.handleDebugSLO)))
	s.mux.Handle("GET /debug/profiles", s.instrument("/debug/profiles", false, s.loopbackOnly(s.handleDebugProfiles)))
	s.mux.Handle("GET /debug/profiles/{id}", s.instrument("/debug/profiles/{id}", false, s.loopbackOnly(s.handleDebugProfile)))
	// Compactions run on background goroutines inside the index; the hook
	// surfaces each one as a log line and a duration observation.
	ix.OnCompaction(func(cs search.CompactionStats) {
		s.metrics.Compaction.ObserveDuration(cs.Duration)
		s.log.Info("compaction",
			"segments_in", cs.Inputs, "trees_in", cs.InputTrees,
			"trees_out", cs.Output, "duration", cs.Duration)
	})
	s.ready.Store(true)
	return s
}

// Handler returns the server's full route tree (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// Index returns the served index.
func (s *Server) Index() *search.Index { return s.ix }

// Metrics returns the server's metrics registry.
func (s *Server) Metrics() *Metrics { return s.metrics }

// Recorder returns the flight recorder (nil when disabled).
func (s *Server) Recorder() *obs.Recorder { return s.recorder }

// Exporter returns the OTLP trace exporter (nil when disabled).
func (s *Server) Exporter() *obs.Exporter { return s.exporter }

// Profiler returns the tail profiler (nil when disabled).
func (s *Server) Profiler() *obs.TailProfiler { return s.profiler }

// Serve accepts connections on ln until Shutdown. It starts the periodic
// snapshot loop and blocks like http.Server.Serve (returning
// http.ErrServerClosed after a clean shutdown).
func (s *Server) Serve(ln net.Listener) error {
	s.ln = ln
	s.httpSrv = &http.Server{
		Handler:           s.mux,
		ReadHeaderTimeout: 5 * time.Second,
	}
	s.startSnapshotLoop()
	s.log.Info("serving", "addr", ln.Addr().String(), "trees", s.ix.Size(), "filter", s.ix.Filter().Name())
	return s.httpSrv.Serve(ln)
}

// ListenAndServe listens on addr and calls Serve.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Addr returns the bound address after Serve/ListenAndServe started
// listening ("" before).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Shutdown drains the server gracefully: readiness flips to 503 (load
// balancers stop sending traffic), in-flight requests run to completion
// (bounded by ctx), the snapshot loop stops, and a final snapshot persists
// any inserts the periodic loop hasn't seen.
func (s *Server) Shutdown(ctx context.Context) error {
	s.ready.Store(false)
	var err error
	if s.httpSrv != nil {
		err = s.httpSrv.Shutdown(ctx)
	}
	// No new prober goroutines may start once the background group is
	// being drained.
	s.degradedMu.Lock()
	s.closing = true
	s.degradedMu.Unlock()
	s.stopSnapshotLoop()
	if s.dirty() {
		if serr := s.Snapshot(); serr != nil && err == nil {
			err = serr
		}
	}
	if s.wal != nil {
		if cerr := s.wal.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	// Flush queued traces before the process goes away; the shutdown
	// context bounds how long a slow collector can hold us.
	if ferr := s.exporter.Close(ctx); ferr != nil && err == nil {
		err = ferr
	}
	s.profiler.Close()
	s.log.Info("shut down", "final_snapshot", s.cfg.SnapshotPath != "", "err", err)
	return err
}

// dirty reports whether writes (inserts or deletes) happened since the
// last snapshot.
func (s *Server) dirty() bool { return s.inserts.Load()+s.deletes.Load() != s.saved.Load() }

// recordQuery offers one served query to the workload log. Recording is
// best-effort: a sampled-out query returns silently, and a write error is
// logged but never fails the response.
func (s *Server) recordQuery(op, treeText string, k, tau int, st search.Stats) {
	if s.cfg.QueryLog == nil {
		return
	}
	err := s.cfg.QueryLog.Record(qlog.Record{
		Op:     op,
		Tree:   treeText,
		K:      k,
		Tau:    tau,
		Filter: s.ix.Filter().Name(),
		Stats: qlog.RecordStats{
			Dataset:        st.Dataset,
			Candidates:     st.Candidates,
			Verified:       st.Verified,
			Results:        st.Results,
			FalsePositives: st.FalsePositives,
			FilterUS:       st.FilterTime.Microseconds(),
			RefineUS:       st.RefineTime.Microseconds(),
		},
	})
	if err != nil {
		s.log.Warn("query log record failed", "err", err)
	}
}

// Snapshot persists the index to Config.SnapshotPath atomically and
// durably: temp file in the same directory, fsync, checksum
// self-verification (a snapshot that would not load back is never
// published), rename, directory fsync. It is a no-op without a configured
// path, and safe to call while queries and inserts are running: the codec
// copies the index state under its read lock.
//
// After a successful snapshot the write-ahead log is trimmed: records
// below the offset captured here are covered by the snapshot (their
// inserts happened before the codec's consistent cut) and no longer
// needed for recovery.
func (s *Server) Snapshot() error {
	if s.cfg.SnapshotPath == "" {
		return nil
	}
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	// Everything below walOff was applied to the index before this
	// point, so the cut below includes it; records appended later may or
	// may not be in the cut, which replay tolerates (positions make it
	// idempotent).
	var walOff int64
	if s.wal != nil {
		walOff = s.wal.Offset()
	}
	// Writes accepted after this read land in the next snapshot.
	mark := s.inserts.Load() + s.deletes.Load()
	// The span tree times each stage of the publication; on success it is
	// logged with the "snapshot written" record and its total duration
	// feeds the snapshot_write_seconds histogram.
	span := obs.New("snapshot")
	span.SetInt("trees", int64(s.ix.Size()))
	dir := filepath.Dir(s.cfg.SnapshotPath)
	tmp, err := s.fs.CreateTemp(dir, ".treesimd-snapshot-*")
	if err != nil {
		return fmt.Errorf("server: snapshot: %w", err)
	}
	defer s.fs.Remove(tmp.Name())
	wsp := span.StartChild("write")
	if err := search.SaveIndex(tmp, s.ix); err != nil {
		tmp.Close()
		return fmt.Errorf("server: snapshot: %w", err)
	}
	wsp.End()
	// Fsync before rename: without it, the rename can publish a file
	// whose bytes are still only in the page cache, and a power cut
	// leaves an empty or partial "atomic" snapshot.
	ssp := span.StartChild("sync")
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("server: snapshot sync: %w", err)
	}
	ssp.End()
	// Read back and verify the checksum before publishing: a write that
	// went wrong (bad disk, torn page) must not replace a good snapshot.
	vsp := span.StartChild("verify")
	if _, err := tmp.Seek(0, io.SeekStart); err != nil {
		tmp.Close()
		return fmt.Errorf("server: snapshot verify: %w", err)
	}
	if err := search.VerifySnapshot(tmp); err != nil {
		tmp.Close()
		s.snapCRCFail.Add(1)
		return fmt.Errorf("server: snapshot failed self-verification, not published: %w", err)
	}
	vsp.End()
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("server: snapshot: %w", err)
	}
	rsp := span.StartChild("rename")
	// Shift the generation chain before publishing: the current snapshot
	// becomes <path>.1, .1 becomes .2, and so on up to SnapshotKeep-1
	// predecessors. Each shift is one atomic rename, so a crash anywhere
	// in the chain leaves every file a complete, loadable snapshot.
	for i := s.cfg.SnapshotKeep - 1; i >= 1; i-- {
		src := SnapshotGeneration(s.cfg.SnapshotPath, i-1)
		if err := s.fs.Rename(src, SnapshotGeneration(s.cfg.SnapshotPath, i)); err != nil {
			if errors.Is(err, os.ErrNotExist) {
				continue // generation not written yet
			}
			return fmt.Errorf("server: snapshot generation shift: %w", err)
		}
	}
	if err := s.fs.Rename(tmp.Name(), s.cfg.SnapshotPath); err != nil {
		return fmt.Errorf("server: snapshot: %w", err)
	}
	// Fsync the directory so the renames themselves survive power loss.
	if err := s.fs.SyncDir(dir); err != nil {
		return fmt.Errorf("server: snapshot dir sync: %w", err)
	}
	rsp.End()
	span.End()
	s.metrics.SnapshotWrite.ObserveDuration(span.Duration())
	s.saved.Store(mark)
	s.snapshots.Add(1)
	s.log.Info("snapshot written", "path", s.cfg.SnapshotPath, "trees", s.ix.Size(),
		"generations", s.cfg.SnapshotKeep, "trace", span.Snapshot())
	s.trimWAL(walOff)
	return nil
}

// SnapshotGeneration names generation gen of a snapshot path: gen 0 is
// the path itself, gen i its i-th predecessor ("<path>.i").
func SnapshotGeneration(path string, gen int) string {
	if gen == 0 {
		return path
	}
	return fmt.Sprintf("%s.%d", path, gen)
}

// trimWAL records the just-published snapshot's WAL cut and trims the
// log below the oldest cut still needed. With SnapshotKeep generations
// retained, the trim floor is the cut of the oldest one — and until this
// process has published a full ring of snapshots the log is not trimmed
// at all, because older on-disk generations (from a previous process)
// have cuts we no longer know. Called with snapMu held.
func (s *Server) trimWAL(walOff int64) {
	if s.wal == nil || walOff <= 0 {
		return
	}
	s.snapCuts = append(s.snapCuts, walOff)
	if len(s.snapCuts) < s.cfg.SnapshotKeep {
		return
	}
	for len(s.snapCuts) > s.cfg.SnapshotKeep {
		s.snapCuts = s.snapCuts[1:]
	}
	if err := s.wal.TrimPrefix(s.snapCuts[0]); err != nil {
		// Not fatal: the untrimmed records replay idempotently; the
		// next snapshot retries the trim.
		s.log.Error("wal trim after snapshot failed", "err", err)
	}
}

func (s *Server) startSnapshotLoop() {
	if s.cfg.SnapshotPath == "" || s.cfg.SnapshotInterval < 0 {
		return
	}
	s.bg.Add(1)
	go func() {
		defer s.bg.Done()
		t := time.NewTicker(s.cfg.SnapshotInterval)
		defer t.Stop()
		for {
			select {
			case <-s.stopSnap:
				return
			case <-t.C:
				if s.degraded.Load() {
					continue // the heal prober owns retries while degraded
				}
				if s.dirty() {
					if err := s.Snapshot(); err != nil {
						s.log.Error("periodic snapshot failed", "err", err)
						s.enterDegraded("snapshot", err)
					}
				}
			}
		}
	}()
}

func (s *Server) stopSnapshotLoop() {
	s.snapOnce.Do(func() { close(s.stopSnap) })
	s.bg.Wait()
}
