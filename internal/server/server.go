// Package server puts the filter-and-refine similarity-search engine of
// internal/search behind a long-lived, concurrent HTTP/JSON service — the
// serve-path the paper's binary branch filter was designed for: a cheap
// lower bound gating the expensive edit-distance verification, now shared
// by many clients against one live index.
//
// Endpoints:
//
//	POST /v1/knn         k nearest neighbors of a query tree
//	POST /v1/range       all indexed trees within edit distance tau
//	POST /v1/dist        exact distance between two ad-hoc trees
//	POST /v1/batch       many knn/range queries in one request
//	POST   /v1/trees       insert a tree into the live index
//	GET    /v1/trees/{id}  fetch an indexed tree
//	DELETE /v1/trees/{id}  tombstone an indexed tree
//	GET    /healthz        liveness (always 200 while the process runs)
//	GET    /readyz         readiness (503 while draining)
//	GET    /metrics        counters, latency histograms, accessed-fraction
//
// The server owns the index, whose segmented store synchronizes itself:
// queries read lock-free epoch snapshots while inserts fill a memtable,
// deletes tombstone, and background compactions merge sealed segments.
// The server admits at most Config.MaxInFlight queries at once (429
// beyond that), bounds each query with a context deadline, logs every
// request with a request ID, persists periodic snapshots through the
// internal/search codec, and drains in-flight queries before writing a
// final snapshot on shutdown.
package server

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"treesim/internal/faultfs"
	"treesim/internal/obs"
	"treesim/internal/qlog"
	"treesim/internal/search"
	"treesim/internal/wal"
)

// Config tunes the server; the zero value gets sensible defaults.
type Config struct {
	// MaxInFlight caps concurrently executing query requests; excess
	// requests are rejected with 429. Default 64.
	MaxInFlight int
	// QueryTimeout bounds one query request's work; exceeding it returns
	// 504. Default 10s; negative disables.
	QueryTimeout time.Duration
	// MaxBodyBytes caps request body size. Default 8 MiB.
	MaxBodyBytes int64
	// MaxBatch caps the number of trees in one /v1/batch request.
	// Default 256.
	MaxBatch int
	// SnapshotPath, when set, is where the index is persisted (written
	// atomically: temp file, fsync, checksum verification, rename,
	// directory fsync). Empty disables persistence.
	SnapshotPath string
	// WALPath, when set, enables the write-ahead log: every accepted
	// insert is appended (and fsynced per WALSync) before the response
	// acknowledges it, and Recover replays the log at startup. Empty
	// means inserts between snapshots die with the process.
	WALPath string
	// WALSync picks the log's fsync policy: wal.SyncAlways (the zero
	// value — acknowledged inserts survive power loss) or wal.SyncNever
	// (survive a process crash only).
	WALSync wal.SyncPolicy
	// SnapshotInterval is how often the snapshot loop checks for new
	// inserts to persist. Default 1m; negative disables the periodic
	// loop (the final shutdown snapshot still happens).
	SnapshotInterval time.Duration
	// IncludeTrees selects whether query results carry the matched
	// trees' text encodings (default true via zero-value trickery: set
	// OmitTrees to leave them out).
	OmitTrees bool
	// SlowQuery, when non-nil, enables the slow-query log: any request to
	// a query endpoint whose total time meets or exceeds the threshold
	// logs its full span tree plus the query's EXPLAIN record (filter
	// quality: candidates, false positives, bound distribution). A pointer
	// so that *SlowQuery == 0 ("log every query") stays distinct from the
	// nil default ("disabled").
	SlowQuery *time.Duration
	// QueryLog, when non-nil, records served knn/range queries (including
	// batch inner queries) to a sampled, size-rotated JSONL workload log
	// for offline replay by cmd/treesim-analyze. The server never fails a
	// query over a recording error. The caller owns the writer's lifetime
	// (close it after Shutdown).
	QueryLog *qlog.Writer
	// Logger receives structured request logs. Default: slog text
	// handler on stderr.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight == 0 {
		c.MaxInFlight = 64
	}
	if c.QueryTimeout == 0 {
		c.QueryTimeout = 10 * time.Second
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 256
	}
	if c.SnapshotInterval == 0 {
		c.SnapshotInterval = time.Minute
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}
	return c
}

// Server serves similarity queries over one live index.
type Server struct {
	cfg     Config
	ix      *search.Index
	log     *slog.Logger
	metrics *Metrics
	sem     limiter
	mux     *http.ServeMux

	ready     atomic.Bool   // readyz: accepting traffic
	reqSeq    atomic.Uint64 // request-ID counter
	inserts   atomic.Uint64 // total inserts accepted
	deletes   atomic.Uint64 // total deletes accepted
	saved     atomic.Uint64 // value of inserts+deletes at the last snapshot
	snapshots atomic.Uint64 // snapshots written

	// Durability state (see durability.go). fs is the filesystem the
	// snapshot and WAL paths write through; tests swap in a fault
	// injector before first use.
	fs             faultfs.FS
	wal            *wal.Log
	walMu          sync.Mutex    // makes (assign position, WAL append, apply) atomic
	walRecords     atomic.Uint64 // records appended by this process
	walReplayed    atomic.Uint64 // records replayed at startup
	snapCRCFail    atomic.Uint64 // snapshots that failed checksum self-verification
	recovering     atomic.Bool   // Recover in progress (readyz: 503)
	replayProgress atomic.Uint64 // records applied so far during Recover

	httpSrv  *http.Server
	ln       net.Listener
	bg       sync.WaitGroup
	stopSnap chan struct{}
	snapOnce sync.Once
	snapMu   sync.Mutex // serializes snapshot writes
}

// New wraps a built index in a server. The index is served as-is; build or
// load it first (see cmd/treesimd).
func New(ix *search.Index, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		ix:       ix,
		log:      cfg.Logger,
		metrics:  NewMetrics(),
		sem:      newLimiter(cfg.MaxInFlight),
		fs:       faultfs.OS,
		stopSnap: make(chan struct{}),
	}
	s.mux = http.NewServeMux()
	s.mux.Handle("POST /v1/knn", s.instrument("/v1/knn", true, s.handleKNN))
	s.mux.Handle("POST /v1/range", s.instrument("/v1/range", true, s.handleRange))
	s.mux.Handle("POST /v1/dist", s.instrument("/v1/dist", true, s.handleDist))
	s.mux.Handle("POST /v1/batch", s.instrument("/v1/batch", true, s.handleBatch))
	s.mux.Handle("POST /v1/trees", s.instrument("/v1/trees", true, s.handleInsert))
	s.mux.Handle("GET /v1/trees/{id}", s.instrument("/v1/trees/{id}", false, s.handleGetTree))
	s.mux.Handle("DELETE /v1/trees/{id}", s.instrument("/v1/trees/{id}", true, s.handleDelete))
	s.mux.Handle("GET /healthz", s.instrument("/healthz", false, s.handleHealthz))
	s.mux.Handle("GET /readyz", s.instrument("/readyz", false, s.handleReadyz))
	s.mux.Handle("GET /metrics", s.instrument("/metrics", false, s.handleMetrics))
	s.mux.Handle("GET /version", s.instrument("/version", false, s.handleVersion))
	// Compactions run on background goroutines inside the index; the hook
	// surfaces each one as a log line and a duration observation.
	ix.OnCompaction(func(cs search.CompactionStats) {
		s.metrics.Compaction.ObserveDuration(cs.Duration)
		s.log.Info("compaction",
			"segments_in", cs.Inputs, "trees_in", cs.InputTrees,
			"trees_out", cs.Output, "duration", cs.Duration)
	})
	s.ready.Store(true)
	return s
}

// Handler returns the server's full route tree (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// Index returns the served index.
func (s *Server) Index() *search.Index { return s.ix }

// Metrics returns the server's metrics registry.
func (s *Server) Metrics() *Metrics { return s.metrics }

// Serve accepts connections on ln until Shutdown. It starts the periodic
// snapshot loop and blocks like http.Server.Serve (returning
// http.ErrServerClosed after a clean shutdown).
func (s *Server) Serve(ln net.Listener) error {
	s.ln = ln
	s.httpSrv = &http.Server{
		Handler:           s.mux,
		ReadHeaderTimeout: 5 * time.Second,
	}
	s.startSnapshotLoop()
	s.log.Info("serving", "addr", ln.Addr().String(), "trees", s.ix.Size(), "filter", s.ix.Filter().Name())
	return s.httpSrv.Serve(ln)
}

// ListenAndServe listens on addr and calls Serve.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Addr returns the bound address after Serve/ListenAndServe started
// listening ("" before).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Shutdown drains the server gracefully: readiness flips to 503 (load
// balancers stop sending traffic), in-flight requests run to completion
// (bounded by ctx), the snapshot loop stops, and a final snapshot persists
// any inserts the periodic loop hasn't seen.
func (s *Server) Shutdown(ctx context.Context) error {
	s.ready.Store(false)
	var err error
	if s.httpSrv != nil {
		err = s.httpSrv.Shutdown(ctx)
	}
	s.stopSnapshotLoop()
	if s.dirty() {
		if serr := s.Snapshot(); serr != nil && err == nil {
			err = serr
		}
	}
	if s.wal != nil {
		if cerr := s.wal.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	s.log.Info("shut down", "final_snapshot", s.cfg.SnapshotPath != "", "err", err)
	return err
}

// dirty reports whether writes (inserts or deletes) happened since the
// last snapshot.
func (s *Server) dirty() bool { return s.inserts.Load()+s.deletes.Load() != s.saved.Load() }

// recordQuery offers one served query to the workload log. Recording is
// best-effort: a sampled-out query returns silently, and a write error is
// logged but never fails the response.
func (s *Server) recordQuery(op, treeText string, k, tau int, st search.Stats) {
	if s.cfg.QueryLog == nil {
		return
	}
	err := s.cfg.QueryLog.Record(qlog.Record{
		Op:     op,
		Tree:   treeText,
		K:      k,
		Tau:    tau,
		Filter: s.ix.Filter().Name(),
		Stats: qlog.RecordStats{
			Dataset:        st.Dataset,
			Candidates:     st.Candidates,
			Verified:       st.Verified,
			Results:        st.Results,
			FalsePositives: st.FalsePositives,
			FilterUS:       st.FilterTime.Microseconds(),
			RefineUS:       st.RefineTime.Microseconds(),
		},
	})
	if err != nil {
		s.log.Warn("query log record failed", "err", err)
	}
}

// Snapshot persists the index to Config.SnapshotPath atomically and
// durably: temp file in the same directory, fsync, checksum
// self-verification (a snapshot that would not load back is never
// published), rename, directory fsync. It is a no-op without a configured
// path, and safe to call while queries and inserts are running: the codec
// copies the index state under its read lock.
//
// After a successful snapshot the write-ahead log is trimmed: records
// below the offset captured here are covered by the snapshot (their
// inserts happened before the codec's consistent cut) and no longer
// needed for recovery.
func (s *Server) Snapshot() error {
	if s.cfg.SnapshotPath == "" {
		return nil
	}
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	// Everything below walOff was applied to the index before this
	// point, so the cut below includes it; records appended later may or
	// may not be in the cut, which replay tolerates (positions make it
	// idempotent).
	var walOff int64
	if s.wal != nil {
		walOff = s.wal.Offset()
	}
	// Writes accepted after this read land in the next snapshot.
	mark := s.inserts.Load() + s.deletes.Load()
	// The span tree times each stage of the publication; on success it is
	// logged with the "snapshot written" record and its total duration
	// feeds the snapshot_write_seconds histogram.
	span := obs.New("snapshot")
	span.SetInt("trees", int64(s.ix.Size()))
	dir := filepath.Dir(s.cfg.SnapshotPath)
	tmp, err := s.fs.CreateTemp(dir, ".treesimd-snapshot-*")
	if err != nil {
		return fmt.Errorf("server: snapshot: %w", err)
	}
	defer s.fs.Remove(tmp.Name())
	wsp := span.StartChild("write")
	if err := search.SaveIndex(tmp, s.ix); err != nil {
		tmp.Close()
		return fmt.Errorf("server: snapshot: %w", err)
	}
	wsp.End()
	// Fsync before rename: without it, the rename can publish a file
	// whose bytes are still only in the page cache, and a power cut
	// leaves an empty or partial "atomic" snapshot.
	ssp := span.StartChild("sync")
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("server: snapshot sync: %w", err)
	}
	ssp.End()
	// Read back and verify the checksum before publishing: a write that
	// went wrong (bad disk, torn page) must not replace a good snapshot.
	vsp := span.StartChild("verify")
	if _, err := tmp.Seek(0, io.SeekStart); err != nil {
		tmp.Close()
		return fmt.Errorf("server: snapshot verify: %w", err)
	}
	if err := search.VerifySnapshot(tmp); err != nil {
		tmp.Close()
		s.snapCRCFail.Add(1)
		return fmt.Errorf("server: snapshot failed self-verification, not published: %w", err)
	}
	vsp.End()
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("server: snapshot: %w", err)
	}
	rsp := span.StartChild("rename")
	if err := s.fs.Rename(tmp.Name(), s.cfg.SnapshotPath); err != nil {
		return fmt.Errorf("server: snapshot: %w", err)
	}
	// Fsync the directory so the rename itself survives power loss.
	if err := s.fs.SyncDir(dir); err != nil {
		return fmt.Errorf("server: snapshot dir sync: %w", err)
	}
	rsp.End()
	span.End()
	s.metrics.SnapshotWrite.ObserveDuration(span.Duration())
	s.saved.Store(mark)
	s.snapshots.Add(1)
	s.log.Info("snapshot written", "path", s.cfg.SnapshotPath, "trees", s.ix.Size(),
		"trace", span.Snapshot())
	if s.wal != nil && walOff > 0 {
		if err := s.wal.TrimPrefix(walOff); err != nil {
			// Not fatal: the untrimmed records replay idempotently; the
			// next snapshot retries the trim.
			s.log.Error("wal trim after snapshot failed", "err", err)
		}
	}
	return nil
}

func (s *Server) startSnapshotLoop() {
	if s.cfg.SnapshotPath == "" || s.cfg.SnapshotInterval < 0 {
		return
	}
	s.bg.Add(1)
	go func() {
		defer s.bg.Done()
		t := time.NewTicker(s.cfg.SnapshotInterval)
		defer t.Stop()
		for {
			select {
			case <-s.stopSnap:
				return
			case <-t.C:
				if s.dirty() {
					if err := s.Snapshot(); err != nil {
						s.log.Error("periodic snapshot failed", "err", err)
					}
				}
			}
		}
	}()
}

func (s *Server) stopSnapshotLoop() {
	s.snapOnce.Do(func() { close(s.stopSnap) })
	s.bg.Wait()
}
