package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"treesim/internal/datagen"
	"treesim/internal/search"
	"treesim/internal/tree"
)

func testDataset(n int, seed int64) []*tree.Tree {
	spec := datagen.Spec{FanoutMean: 3, FanoutStd: 1, SizeMean: 14, SizeStd: 4, Labels: 5, Decay: 0.1}
	return datagen.New(spec, seed).Dataset(n, 5)
}

func quietConfig() Config {
	return Config{Logger: slog.New(slog.NewTextHandler(io.Discard, nil))}
}

// newTestServer builds a server over a fresh dataset and wraps its handler
// in an httptest server.
func newTestServer(t *testing.T, cfg Config, n int, seed int64) (*Server, *httptest.Server, []*tree.Tree) {
	t.Helper()
	ts := testDataset(n, seed)
	ix := search.NewIndex(ts, search.NewBiBranch())
	s := New(ix, cfg)
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	return s, hs, ts
}

// postJSON posts v and decodes the response body into out (when non-nil),
// returning the status code.
func postJSON(t *testing.T, url string, v any, out any) int {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		raw, _ := io.ReadAll(resp.Body)
		if err := json.Unmarshal(raw, out); err != nil && resp.StatusCode == http.StatusOK {
			t.Fatalf("decoding %s: %v (body %q)", url, err, raw)
		}
	}
	return resp.StatusCode
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil && resp.StatusCode == http.StatusOK {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

// TestKNNRangeEquivalence: the HTTP answers are bit-identical to direct
// search.Index calls — the acceptance criterion of the server subsystem.
func TestKNNRangeEquivalence(t *testing.T) {
	s, hs, ts := newTestServer(t, quietConfig(), 60, 1)
	queries := []*tree.Tree{ts[0], ts[33], testDataset(1, 2)[0]}
	for _, q := range queries {
		for _, k := range []int{1, 5} {
			want, _, _ := s.Index().KNN(context.Background(), q, k)
			var got QueryResponse
			if code := postJSON(t, hs.URL+"/v1/knn", KNNRequest{Tree: q.String(), K: k}, &got); code != 200 {
				t.Fatalf("knn status %d", code)
			}
			if len(got.Results) != len(want) {
				t.Fatalf("knn k=%d: %d results, want %d", k, len(got.Results), len(want))
			}
			for i, r := range want {
				if got.Results[i].ID != r.ID || got.Results[i].Dist != r.Dist {
					t.Fatalf("knn k=%d result %d: got %+v, want %+v", k, i, got.Results[i], r)
				}
				if got.Results[i].Tree != s.Index().Tree(r.ID).String() {
					t.Fatalf("knn result %d carries wrong tree text", i)
				}
			}
			if got.Stats.Dataset != len(ts) {
				t.Fatalf("stats dataset %d, want %d", got.Stats.Dataset, len(ts))
			}
		}
		for _, tau := range []int{0, 3} {
			want, _, _ := s.Index().Range(context.Background(), q, tau)
			var got QueryResponse
			if code := postJSON(t, hs.URL+"/v1/range", RangeRequest{Tree: q.String(), Tau: tau}, &got); code != 200 {
				t.Fatalf("range status %d", code)
			}
			if len(got.Results) != len(want) {
				t.Fatalf("range tau=%d: %d results, want %d", tau, len(got.Results), len(want))
			}
			for i, r := range want {
				if got.Results[i].ID != r.ID || got.Results[i].Dist != r.Dist {
					t.Fatalf("range result %d: got %+v, want %+v", i, got.Results[i], r)
				}
			}
		}
	}
}

// TestBatchEquivalence: /v1/batch answers match per-query /v1/knn.
func TestBatchEquivalence(t *testing.T) {
	s, hs, ts := newTestServer(t, quietConfig(), 50, 3)
	trees := []string{ts[1].String(), ts[20].String(), ts[49].String()}
	var batch BatchResponse
	if code := postJSON(t, hs.URL+"/v1/batch", BatchRequest{Op: "knn", Trees: trees, K: 3}, &batch); code != 200 {
		t.Fatalf("batch status %d", code)
	}
	if len(batch.Queries) != len(trees) {
		t.Fatalf("batch answered %d queries, want %d", len(batch.Queries), len(trees))
	}
	for i, ql := range trees {
		q := tree.MustParse(ql)
		want, _, _ := s.Index().KNN(context.Background(), q, 3)
		got := batch.Queries[i].Results
		if len(got) != len(want) {
			t.Fatalf("batch query %d: %d results, want %d", i, len(got), len(want))
		}
		for j, r := range want {
			if got[j].ID != r.ID || got[j].Dist != r.Dist {
				t.Fatalf("batch query %d result %d: got %+v, want %+v", i, j, got[j], r)
			}
		}
	}

	var rbatch BatchResponse
	if code := postJSON(t, hs.URL+"/v1/batch", BatchRequest{Op: "range", Trees: trees, Tau: 2}, &rbatch); code != 200 {
		t.Fatalf("range batch status %d", code)
	}
	for i, ql := range trees {
		want, _, _ := s.Index().Range(context.Background(), tree.MustParse(ql), 2)
		if len(rbatch.Queries[i].Results) != len(want) {
			t.Fatalf("range batch query %d: %d results, want %d", i, len(rbatch.Queries[i].Results), len(want))
		}
	}
}

// TestDistEndpoint: ad-hoc distance matches the library and the reported
// lower bound is a true lower bound.
func TestDistEndpoint(t *testing.T) {
	_, hs, _ := newTestServer(t, quietConfig(), 10, 4)
	var resp DistResponse
	req := DistRequest{T1: "a(b(c,d),b(c,d),e)", T2: "a(b(c,d,b(e)),c,d,e)"}
	if code := postJSON(t, hs.URL+"/v1/dist", req, &resp); code != 200 {
		t.Fatalf("dist status %d", code)
	}
	if resp.EditDistance != 3 {
		t.Fatalf("edit distance %d, want 3 (the paper's Fig. 1 pair)", resp.EditDistance)
	}
	if resp.LowerBound > resp.EditDistance || resp.LowerBound < 0 {
		t.Fatalf("lower bound %d not in [0,%d]", resp.LowerBound, resp.EditDistance)
	}
}

// TestInsertAndGet: inserts are visible to immediate queries and tree
// lookup; bad ids are 400/404.
func TestInsertAndGet(t *testing.T) {
	s, hs, _ := newTestServer(t, quietConfig(), 20, 5)
	novel := "zz(yy(xx),ww,vv(uu,tt))"
	var ins InsertResponse
	if code := postJSON(t, hs.URL+"/v1/trees", InsertRequest{Tree: novel}, &ins); code != 200 {
		t.Fatalf("insert status %d", code)
	}
	if ins.ID != 20 || ins.Size != 21 {
		t.Fatalf("insert response %+v, want id=20 size=21", ins)
	}
	var knn QueryResponse
	postJSON(t, hs.URL+"/v1/knn", KNNRequest{Tree: novel, K: 1}, &knn)
	if len(knn.Results) != 1 || knn.Results[0].ID != ins.ID || knn.Results[0].Dist != 0 {
		t.Fatalf("inserted tree not its own nearest neighbor: %+v", knn.Results)
	}
	var got TreeResponse
	if code := getJSON(t, fmt.Sprintf("%s/v1/trees/%d", hs.URL, ins.ID), &got); code != 200 {
		t.Fatalf("get tree status %d", code)
	}
	if got.Tree != tree.MustParse(novel).String() {
		t.Fatalf("got tree %q, want %q", got.Tree, novel)
	}
	if code := getJSON(t, hs.URL+"/v1/trees/999", nil); code != 404 {
		t.Fatalf("out-of-range tree id: status %d, want 404", code)
	}
	if code := getJSON(t, hs.URL+"/v1/trees/abc", nil); code != 400 {
		t.Fatalf("non-integer tree id: status %d, want 400", code)
	}
	if s.Index().Size() != 21 {
		t.Fatalf("index size %d after insert, want 21", s.Index().Size())
	}
}

// TestInsertAcceptedForGlobalFilter: pivot-table indexes once rejected
// inserts; the segmented store made every filter configuration
// appendable, so the insert lands and is immediately queryable.
func TestInsertAcceptedForGlobalFilter(t *testing.T) {
	ts := testDataset(20, 6)
	ix := search.NewIndex(ts, search.NewPivotBiBranch())
	s := New(ix, quietConfig())
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	var ins InsertResponse
	if code := postJSON(t, hs.URL+"/v1/trees", InsertRequest{Tree: "a(b,c)"}, &ins); code != 200 {
		t.Fatalf("insert into pivot index: status %d, want 200", code)
	}
	if ins.ID != 20 || ix.Size() != 21 {
		t.Fatalf("insert got id %d, index size %d", ins.ID, ix.Size())
	}
	var knn QueryResponse
	postJSON(t, hs.URL+"/v1/knn", KNNRequest{Tree: "a(b,c)", K: 1}, &knn)
	if len(knn.Results) != 1 || knn.Results[0].ID != 20 || knn.Results[0].Dist != 0 {
		t.Fatalf("inserted tree not its own nearest neighbor: %+v", knn.Results)
	}
}

// TestDeleteEndpoint: DELETE tombstones a tree, the id 404s afterwards,
// queries stop returning it, and unknown or double deletes answer
// not_found through the stable error envelope.
func TestDeleteEndpoint(t *testing.T) {
	s, hs, ts := newTestServer(t, quietConfig(), 20, 8)
	ix := s.Index()
	target := ts[5]
	del := func(id string) (int, ErrorResponse, DeleteResponse) {
		req, _ := http.NewRequest(http.MethodDelete, hs.URL+"/v1/trees/"+id, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		var e ErrorResponse
		var d DeleteResponse
		if resp.StatusCode == 200 {
			_ = json.Unmarshal(raw, &d)
		} else {
			_ = json.Unmarshal(raw, &e)
		}
		return resp.StatusCode, e, d
	}
	code, _, d := del("5")
	if code != 200 || d.ID != 5 || d.Live != 19 {
		t.Fatalf("delete: status %d, resp %+v", code, d)
	}
	if getJSON(t, hs.URL+"/v1/trees/5", nil) != 404 {
		t.Fatal("deleted tree still fetchable")
	}
	var knn QueryResponse
	postJSON(t, hs.URL+"/v1/knn", KNNRequest{Tree: target.String(), K: 3}, &knn)
	for _, r := range knn.Results {
		if r.ID == 5 {
			t.Fatalf("deleted tree in KNN results: %+v", knn.Results)
		}
	}
	if code, e, _ := del("5"); code != 404 || e.Error.Code != ErrCodeNotFound {
		t.Fatalf("double delete: status %d code %q, want 404 %q", code, e.Error.Code, ErrCodeNotFound)
	}
	if code, e, _ := del("999"); code != 404 || e.Error.Code != ErrCodeNotFound {
		t.Fatalf("unknown id delete: status %d code %q", code, e.Error.Code)
	}
	if code, e, _ := del("abc"); code != 400 || e.Error.Code != ErrCodeInvalidArgument {
		t.Fatalf("non-integer id delete: status %d code %q", code, e.Error.Code)
	}
	if ix.Size() != 20 || ix.Live() != 19 {
		t.Fatalf("after delete: size %d live %d, want 20/19", ix.Size(), ix.Live())
	}
}

// TestBadRequests: every malformed input is a 4xx with a JSON error body,
// never a 5xx or a panic.
func TestBadRequests(t *testing.T) {
	_, hs, _ := newTestServer(t, quietConfig(), 10, 7)
	cases := []struct {
		path string
		body string
		want int
		code string
	}{
		{"/v1/knn", `{bad json`, 400, ErrCodeInvalidRequest},
		{"/v1/knn", `{"tree":"a(b","k":3}`, 400, ErrCodeInvalidTree},
		{"/v1/knn", `{"tree":"a(b)","k":0}`, 400, ErrCodeInvalidArgument},
		{"/v1/knn", `{"tree":"","k":3}`, 400, ErrCodeInvalidTree},
		{"/v1/range", `{"tree":"a(b)","tau":-1}`, 400, ErrCodeInvalidArgument},
		{"/v1/dist", `{"t1":"a","t2":"b("}`, 400, ErrCodeInvalidTree},
		{"/v1/batch", `{"op":"nope","trees":["a"],"k":1}`, 400, ErrCodeInvalidArgument},
		{"/v1/batch", `{"op":"knn","trees":[],"k":1}`, 400, ErrCodeInvalidArgument},
		{"/v1/batch", `{"op":"knn","trees":["a","b("],"k":1}`, 400, ErrCodeInvalidTree},
		{"/v1/trees", `{"tree":"x(y"}`, 400, ErrCodeInvalidTree},
	}
	for _, c := range cases {
		resp, err := http.Post(hs.URL+c.path, "application/json", bytes.NewReader([]byte(c.body)))
		if err != nil {
			t.Fatal(err)
		}
		var e ErrorResponse
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("%s %q: status %d, want %d", c.path, c.body, resp.StatusCode, c.want)
		}
		if err := json.Unmarshal(raw, &e); err != nil || e.Error.Message == "" {
			t.Errorf("%s %q: error body %q not a JSON error", c.path, c.body, raw)
		}
		if e.Error.Code != c.code {
			t.Errorf("%s %q: error code %q, want %q", c.path, c.body, e.Error.Code, c.code)
		}
	}
	// Oversized batch.
	trees := make([]string, 300)
	for i := range trees {
		trees[i] = "a(b)"
	}
	if code := postJSON(t, hs.URL+"/v1/batch", BatchRequest{Op: "knn", Trees: trees, K: 1}, nil); code != 400 {
		t.Errorf("oversized batch: status %d, want 400", code)
	}
}

// TestAdmission429: with the admission semaphore saturated, query
// endpoints shed load with 429 + Retry-After while health stays green;
// after release, queries flow again.
func TestAdmission429(t *testing.T) {
	cfg := quietConfig()
	cfg.MaxInFlight = 1
	s, hs, ts := newTestServer(t, cfg, 20, 8)
	if !s.sem.tryAcquire() {
		t.Fatal("could not saturate the limiter")
	}
	body, _ := json.Marshal(KNNRequest{Tree: ts[0].String(), K: 1})
	resp, err := http.Post(hs.URL+"/v1/knn", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated knn: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if code := getJSON(t, hs.URL+"/healthz", nil); code != 200 {
		t.Errorf("healthz under saturation: %d", code)
	}
	s.sem.release()
	if code := postJSON(t, hs.URL+"/v1/knn", KNNRequest{Tree: ts[0].String(), K: 1}, nil); code != 200 {
		t.Fatalf("knn after release: status %d, want 200", code)
	}
}

// TestQueryTimeout: an unmeetable deadline surfaces as 504.
func TestQueryTimeout(t *testing.T) {
	cfg := quietConfig()
	cfg.QueryTimeout = time.Nanosecond
	_, hs, ts := newTestServer(t, cfg, 30, 9)
	if code := postJSON(t, hs.URL+"/v1/knn", KNNRequest{Tree: ts[0].String(), K: 3}, nil); code != http.StatusGatewayTimeout {
		t.Fatalf("timed-out knn: status %d, want 504", code)
	}
	// Batch must report the expired deadline too, not a 200 with empty
	// per-query results (workers bail before their first query).
	breq := BatchRequest{Op: "knn", Trees: []string{ts[0].String(), ts[1].String()}, K: 3}
	if code := postJSON(t, hs.URL+"/v1/batch", breq, nil); code != http.StatusGatewayTimeout {
		t.Fatalf("timed-out batch: status %d, want 504", code)
	}
}

// TestHealthReadyLifecycle: readyz flips to 503 once shutdown begins.
func TestHealthReadyLifecycle(t *testing.T) {
	s, hs, _ := newTestServer(t, quietConfig(), 10, 10)
	if code := getJSON(t, hs.URL+"/readyz", nil); code != 200 {
		t.Fatalf("readyz before shutdown: %d", code)
	}
	s.ready.Store(false)
	if code := getJSON(t, hs.URL+"/readyz", nil); code != 503 {
		t.Fatalf("readyz while draining: %d, want 503", code)
	}
	if code := getJSON(t, hs.URL+"/healthz", nil); code != 200 {
		t.Fatalf("healthz while draining: %d, want 200", code)
	}
}

// TestConcurrentTraffic hammers the HTTP surface with mixed knn, range,
// insert and lookup traffic (run under -race in CI) and then checks the
// index equals a clean rebuild over the same trees.
func TestConcurrentTraffic(t *testing.T) {
	s, hs, base := newTestServer(t, quietConfig(), 40, 11)
	extra := testDataset(40, 12)
	queries := testDataset(4, 13)
	client := hs.Client()

	var wg sync.WaitGroup
	post := func(path string, v any) int {
		body, _ := json.Marshal(v)
		resp, err := client.Post(hs.URL+path, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Error(err)
			return 0
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	for wk := 0; wk < 4; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			for _, tr := range extra[wk*10 : (wk+1)*10] {
				if code := post("/v1/trees", InsertRequest{Tree: tr.String()}); code != 200 {
					t.Errorf("concurrent insert: status %d", code)
					return
				}
			}
		}(wk)
	}
	for wk := 0; wk < 4; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				q := queries[wk%len(queries)].String()
				var code int
				if i%2 == 0 {
					code = post("/v1/knn", KNNRequest{Tree: q, K: 3})
				} else {
					code = post("/v1/range", RangeRequest{Tree: q, Tau: 2})
				}
				if code != 200 {
					t.Errorf("concurrent query: status %d", code)
					return
				}
			}
		}(wk)
	}
	wg.Wait()

	if got, want := s.Index().Size(), len(base)+len(extra); got != want {
		t.Fatalf("after concurrent traffic: index size %d, want %d", got, want)
	}
	// Served index answers like a clean rebuild over the same trees.
	all := make([]*tree.Tree, s.Index().Size())
	for i := range all {
		all[i] = s.Index().Tree(i)
	}
	clean := search.NewIndex(all, search.NewBiBranch())
	for _, q := range queries {
		a, _, _ := s.Index().KNN(context.Background(), q, 5)
		b, _, _ := clean.KNN(context.Background(), q, 5)
		for i := range a {
			if a[i].Dist != b[i].Dist {
				t.Fatalf("hammered server index differs from clean rebuild: %v vs %v", a, b)
			}
		}
	}
}
