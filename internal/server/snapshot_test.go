package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"treesim/internal/search"
	"treesim/internal/tree"
)

// TestSnapshotUnderLoad is the codec round-trip through the server's
// snapshot path: snapshots are written while concurrent inserts and
// queries are in full flight, and every snapshot must reload into an
// index that answers k-NN queries identically to a clean rebuild over the
// same trees. This is what makes a warm restart trustworthy.
func TestSnapshotUnderLoad(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "index.tsix")
	base := testDataset(30, 30)
	ix := search.NewIndex(base, search.NewBiBranch())
	cfg := quietConfig()
	cfg.SnapshotPath = snap
	cfg.SnapshotInterval = -1 // snapshots triggered by hand mid-load
	s := New(ix, cfg)

	hs := httptestServer(t, s)
	extra := testDataset(60, 31)
	queries := testDataset(4, 32)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Inserters via HTTP (so the server's insert accounting runs too).
	for wk := 0; wk < 3; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			for _, tr := range extra[wk*20 : (wk+1)*20] {
				body, _ := json.Marshal(InsertRequest{Tree: tr.String()})
				resp, err := http.Post(hs+"/v1/trees", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(wk)
	}
	// Querier, running until explicitly stopped (after the inserters).
	var qwg sync.WaitGroup
	qwg.Add(1)
	go func() {
		defer qwg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			body, _ := json.Marshal(KNNRequest{Tree: queries[i%len(queries)].String(), K: 3})
			resp, err := http.Post(hs+"/v1/knn", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			i++
		}
	}()

	// Snapshot repeatedly while the load runs, verifying each on the fly.
	for i := 0; i < 4; i++ {
		if err := s.Snapshot(); err != nil {
			t.Fatalf("snapshot %d under load: %v", i, err)
		}
		verifySnapshot(t, snap, queries)
	}
	wg.Wait()
	close(stop)
	qwg.Wait()

	// Final snapshot sees every insert.
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	loaded := verifySnapshot(t, snap, queries)
	if loaded.Size() != len(base)+len(extra) {
		t.Fatalf("final snapshot holds %d trees, want %d", loaded.Size(), len(base)+len(extra))
	}
}

// verifySnapshot loads the snapshot and checks it answers k-NN like a
// clean index rebuilt from the same trees.
func verifySnapshot(t *testing.T, path string, queries []*tree.Tree) *search.Index {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	loaded, err := search.LoadIndex(f)
	if err != nil {
		t.Fatalf("snapshot does not reload: %v", err)
	}
	trees := make([]*tree.Tree, loaded.Size())
	for i := range trees {
		trees[i] = loaded.Tree(i)
	}
	clean := search.NewIndex(trees, search.NewBiBranch())
	for _, q := range queries {
		a, _, _ := loaded.KNN(context.Background(), q, 3)
		b, _, _ := clean.KNN(context.Background(), q, 3)
		if len(a) != len(b) {
			t.Fatalf("snapshot index: %d results, clean rebuild %d", len(a), len(b))
		}
		for i := range a {
			if a[i].Dist != b[i].Dist {
				t.Fatalf("snapshot k-NN differs from clean rebuild: %v vs %v", a, b)
			}
		}
	}
	return loaded
}

// httptestServer wraps the server handler and returns its base URL.
func httptestServer(t *testing.T, s *Server) string {
	t.Helper()
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	return hs.URL
}
