package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"

	"treesim/internal/obs"
)

// syncBuffer lets the server's logger and the test share a buffer under
// the race detector.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (sb *syncBuffer) Write(p []byte) (int, error) {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	return sb.b.Write(p)
}

func (sb *syncBuffer) String() string {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	return sb.b.String()
}

func spanChild(sn obs.SpanSnapshot, name string) (obs.SpanSnapshot, bool) {
	for _, c := range sn.Children {
		if c.Name == name {
			return c, true
		}
	}
	return obs.SpanSnapshot{}, false
}

// TestKNNTrace: ?trace=1 returns the span tree inline — filter and refine
// stages under the request root, stage durations summing within the root,
// and candidate/verified counts as attributes.
func TestKNNTrace(t *testing.T) {
	_, hs, ts := newTestServer(t, quietConfig(), 50, 50)

	var resp QueryResponse
	if code := postJSON(t, hs.URL+"/v1/knn?trace=1", KNNRequest{Tree: ts[1].String(), K: 3}, &resp); code != 200 {
		t.Fatalf("knn status %d", code)
	}
	if resp.Trace == nil {
		t.Fatal("no trace in response")
	}
	root := *resp.Trace
	if root.Name != "/v1/knn" {
		t.Errorf("root span %q, want /v1/knn", root.Name)
	}
	if rid, _ := root.Attrs["request_id"].(string); rid == "" {
		t.Errorf("root span has no request_id attr: %v", root.Attrs)
	}
	filter, ok := spanChild(root, "filter")
	if !ok {
		t.Fatalf("no filter span: %+v", root)
	}
	refine, ok := spanChild(root, "refine")
	if !ok {
		t.Fatalf("no refine span: %+v", root)
	}
	if filter.DurUS+refine.DurUS > root.DurUS {
		t.Errorf("stages %d+%dus exceed root %dus", filter.DurUS, refine.DurUS, root.DurUS)
	}
	// JSON numbers decode as float64.
	if c, _ := filter.Attrs["candidates"].(float64); c != 50 {
		t.Errorf("filter candidates %v, want 50", filter.Attrs["candidates"])
	}
	if v, _ := refine.Attrs["verified"].(float64); int(v) != resp.Stats.Verified {
		t.Errorf("refine verified %v, stats say %d", refine.Attrs["verified"], resp.Stats.Verified)
	}

	// Without the parameter the field stays absent.
	var plain map[string]json.RawMessage
	postJSON(t, hs.URL+"/v1/knn", KNNRequest{Tree: ts[1].String(), K: 3}, &plain)
	if _, ok := plain["trace"]; ok {
		t.Error("untraced response carries a trace field")
	}
}

// TestBatchTrace: a traced batch shows one query[i] child per input tree,
// each with its own filter/refine breakdown.
func TestBatchTrace(t *testing.T) {
	_, hs, ts := newTestServer(t, quietConfig(), 30, 51)

	var resp BatchResponse
	req := BatchRequest{Op: "knn", Trees: []string{ts[0].String(), ts[1].String(), ts[2].String()}, K: 2}
	if code := postJSON(t, hs.URL+"/v1/batch?trace=1", req, &resp); code != 200 {
		t.Fatalf("batch status %d", code)
	}
	if resp.Trace == nil {
		t.Fatal("no trace in batch response")
	}
	for _, name := range []string{"query[0]", "query[1]", "query[2]"} {
		q, ok := spanChild(*resp.Trace, name)
		if !ok {
			t.Fatalf("no %s span: %+v", name, resp.Trace)
		}
		if _, ok := spanChild(q, "filter"); !ok {
			t.Errorf("%s has no filter child: %+v", name, q)
		}
	}
}

// TestSlowQueryLog: with the threshold at zero every query is slow; the
// log gets one structured record carrying the request ID and the span
// tree with its stage breakdown.
func TestSlowQueryLog(t *testing.T) {
	var buf syncBuffer
	cfg := Config{Logger: slog.New(slog.NewJSONHandler(&buf, nil))}
	threshold := time.Duration(0)
	cfg.SlowQuery = &threshold
	_, hs, ts := newTestServer(t, cfg, 30, 52)

	var resp QueryResponse
	if code := postJSON(t, hs.URL+"/v1/knn", KNNRequest{Tree: ts[4].String(), K: 2}, &resp); code != 200 {
		t.Fatalf("knn status %d", code)
	}

	var slow []map[string]any
	sc := bufio.NewScanner(strings.NewReader(buf.String()))
	for sc.Scan() {
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("log line %q: %v", sc.Text(), err)
		}
		if rec["msg"] == "slow query" {
			slow = append(slow, rec)
		}
	}
	if len(slow) != 1 {
		t.Fatalf("%d slow-query records, want 1 (log: %s)", len(slow), buf.String())
	}
	rec := slow[0]
	rid, _ := rec["request_id"].(string)
	if rid == "" {
		t.Errorf("slow-query record lacks request_id: %v", rec)
	}
	tree, _ := rec["trace_tree"].(string)
	if !strings.Contains(tree, "filter") || !strings.Contains(tree, "refine") {
		t.Errorf("trace_tree is not the rendered span tree: %q", tree)
	}
	trace, ok := rec["trace"].(map[string]any)
	if !ok {
		t.Fatalf("slow-query record lacks a structured trace: %v", rec)
	}
	filter, ok := trace["filter"].(map[string]any)
	if !ok {
		t.Fatalf("trace has no filter group: %v", trace)
	}
	if _, ok := filter["dur_us"]; !ok {
		t.Errorf("filter group lacks dur_us: %v", filter)
	}
	if trace["request_id"] != rid {
		t.Errorf("trace request_id %v != record request_id %q", trace["request_id"], rid)
	}

	// A non-query endpoint never triggers the slow log, even at zero.
	before := strings.Count(buf.String(), "slow query")
	if code := getJSON(t, hs.URL+"/healthz", nil); code != 200 {
		t.Fatalf("healthz status %d", code)
	}
	if after := strings.Count(buf.String(), "slow query"); after != before {
		t.Error("healthz triggered the slow-query log")
	}
}

// TestSlowQueryDisabled: the nil default logs nothing however slow.
func TestSlowQueryDisabled(t *testing.T) {
	var buf syncBuffer
	cfg := Config{Logger: slog.New(slog.NewJSONHandler(&buf, nil))}
	_, hs, ts := newTestServer(t, cfg, 20, 53)
	if code := postJSON(t, hs.URL+"/v1/knn", KNNRequest{Tree: ts[0].String(), K: 2}, nil); code != 200 {
		t.Fatalf("knn status %d", code)
	}
	if strings.Contains(buf.String(), "slow query") {
		t.Error("slow-query log fired with SlowQuery unset")
	}
}
