package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"treesim/internal/obs"
	"treesim/internal/search"
)

// Distributed-tracing tests: W3C traceparent propagation through the
// middleware, the OTLP/JSON export pipeline against an in-process sink,
// the tail-triggered profiler's debug surface, and a goroutine-leak
// guard over the exporter and profiler workers.

// noLeaks fails the test if the goroutine count has not returned to its
// starting baseline by the end of the test (after cleanups such as
// Shutdown ran). The grace loop absorbs goroutines that are mid-exit.
func noLeaks(t *testing.T) {
	t.Helper()
	baseline := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		for {
			if n := runtime.NumGoroutine(); n <= baseline {
				return
			}
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<16)
				n := runtime.Stack(buf, true)
				t.Fatalf("goroutine leak: %d now vs %d baseline\n%s",
					runtime.NumGoroutine(), baseline, buf[:n])
			}
			time.Sleep(10 * time.Millisecond)
		}
	})
}

// testOTLPSink is an in-process collector: every body is validated as
// OTLP/JSON and its spans are indexed by trace ID.
type testOTLPSink struct {
	t  *testing.T
	mu sync.Mutex

	batches int
	spans   int
	// traces maps hex trace id -> the root span names seen for it.
	traces map[string][]string
	// parents maps hex trace id -> the root spans' parentSpanId values.
	parents map[string][]string
	// retries collects the root spans' retry attribute values, when set.
	retries map[string][]string
}

func newTestOTLPSink(t *testing.T) *testOTLPSink {
	return &testOTLPSink{
		t:       t,
		traces:  map[string][]string{},
		parents: map[string][]string{},
		retries: map[string][]string{},
	}
}

func (s *testOTLPSink) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	body, _ := io.ReadAll(r.Body)
	if _, err := obs.CountOTLPSpans(body); err != nil {
		s.t.Errorf("sink received invalid OTLP body: %v", err)
		http.Error(w, "invalid", http.StatusBadRequest)
		return
	}
	var req struct {
		ResourceSpans []struct {
			ScopeSpans []struct {
				Spans []struct {
					TraceID      string `json:"traceId"`
					ParentSpanID string `json:"parentSpanId"`
					Name         string `json:"name"`
					Kind         int    `json:"kind"`
					Attributes   []struct {
						Key   string `json:"key"`
						Value struct {
							IntValue string `json:"intValue"`
						} `json:"value"`
					} `json:"attributes"`
				} `json:"spans"`
			} `json:"scopeSpans"`
		} `json:"resourceSpans"`
	}
	if err := json.Unmarshal(body, &req); err != nil {
		s.t.Errorf("sink decode: %v", err)
		http.Error(w, "decode", http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.batches++
	for _, rs := range req.ResourceSpans {
		for _, ss := range rs.ScopeSpans {
			for _, sp := range ss.Spans {
				s.spans++
				if sp.Kind != 2 { // roots only for the per-trace indexes
					continue
				}
				s.traces[sp.TraceID] = append(s.traces[sp.TraceID], sp.Name)
				s.parents[sp.TraceID] = append(s.parents[sp.TraceID], sp.ParentSpanID)
				for _, a := range sp.Attributes {
					if a.Key == "retry" {
						s.retries[sp.TraceID] = append(s.retries[sp.TraceID], a.Value.IntValue)
					}
				}
			}
		}
	}
	w.WriteHeader(http.StatusOK)
}

// newTracingServer wires a server to an in-process OTLP sink with
// export of every trace and a fast exporter flush on Shutdown.
func newTracingServer(t *testing.T, cfg Config) (*Server, *httptest.Server, *testOTLPSink) {
	t.Helper()
	sink := newTestOTLPSink(t)
	collector := httptest.NewServer(sink)
	t.Cleanup(collector.Close)
	cfg.OTLPEndpoint = collector.URL
	if cfg.TraceSample == 0 {
		cfg.TraceSample = 1
	}
	ts := testDataset(40, 1)
	ix := search.NewIndex(ts, search.NewBiBranch())
	s := New(ix, cfg)
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	return s, hs, sink
}

func shutdownServer(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestTraceparentContinuesTrace: an inbound traceparent's trace ID
// flows through the middleware to the response header and out the OTLP
// exporter, with the server's root span parented under the caller's
// span — the acceptance path for cross-process joins.
func TestTraceparentContinuesTrace(t *testing.T) {
	noLeaks(t)
	s, hs, sink := newTracingServer(t, quietConfig())
	ts := testDataset(1, 7)

	const callerTrace = "4bf92f3577b34da6a3ce929d0e0e4736"
	const callerSpan = "00f067aa0ba902b7"
	body, _ := json.Marshal(KNNRequest{Tree: ts[0].String(), K: 3})
	req, _ := http.NewRequest(http.MethodPost, hs.URL+"/v1/knn", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("traceparent", "00-"+callerTrace+"-"+callerSpan+"-01")
	req.Header.Set("tracestate", obs.RetryState(2))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("knn status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Trace-Id"); got != callerTrace {
		t.Fatalf("X-Trace-Id %q, want the caller's %q", got, callerTrace)
	}

	shutdownServer(t, s) // flushes the exporter
	sink.mu.Lock()
	defer sink.mu.Unlock()
	if names := sink.traces[callerTrace]; len(names) != 1 || names[0] != "/v1/knn" {
		t.Fatalf("exported roots for caller trace: %v", sink.traces[callerTrace])
	}
	if parents := sink.parents[callerTrace]; len(parents) != 1 || parents[0] != callerSpan {
		t.Fatalf("root parent %v, want caller span %s", sink.parents[callerTrace], callerSpan)
	}
	if retries := sink.retries[callerTrace]; len(retries) != 1 || retries[0] != "2" {
		t.Fatalf("retry attr %v, want [\"2\"]", sink.retries[callerTrace])
	}
	if st := s.Exporter().Stats(); st.Dropped != 0 || st.Batches == 0 {
		t.Fatalf("exporter stats %+v", st)
	}
}

// TestTraceparentMalformedFallsBack: the middleware answers 200 with a
// fresh, valid trace for every malformed header shape the W3C spec
// rejects — never the inbound identity, never an error.
func TestTraceparentMalformedFallsBack(t *testing.T) {
	noLeaks(t)
	s, hs, _ := newTracingServer(t, quietConfig())
	defer shutdownServer(t, s)
	ts := testDataset(1, 7)
	body, _ := json.Marshal(KNNRequest{Tree: ts[0].String(), K: 3})

	const inTrace = "4bf92f3577b34da6a3ce929d0e0e4736"
	for _, header := range []string{
		"",
		"garbage",
		"ff-" + inTrace + "-00f067aa0ba902b7-01",               // forbidden version
		"00-" + strings.Repeat("0", 32) + "-00f067aa0ba902b7-01", // all-zero trace id
		"00-" + inTrace + "-0000000000000000-01",               // all-zero parent id
		"00-" + strings.ToUpper(inTrace) + "-00f067aa0ba902b7-01", // uppercase hex
		"00-" + inTrace[:20] + "-00f067aa0ba902b7-01",          // short trace id
		"00-" + inTrace + "-00f067aa0ba902b7-zz",               // junk flags
		"00-" + inTrace + "-00f067aa0ba902b7-01-extra",         // version 00, extra field
	} {
		req, _ := http.NewRequest(http.MethodPost, hs.URL+"/v1/knn", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		if header != "" {
			req.Header.Set("traceparent", header)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Errorf("header %q: status %d, want 200", header, resp.StatusCode)
			continue
		}
		got := resp.Header.Get("X-Trace-Id")
		if _, ok := obs.ParseTraceID(got); !ok {
			t.Errorf("header %q: fresh trace id %q invalid", header, got)
		}
		if got == inTrace {
			t.Errorf("header %q: middleware adopted the malformed trace id", header)
		}
	}
}

// FuzzTraceparentMiddleware drives arbitrary header bytes through the
// real middleware: the request must succeed and the response must carry
// a valid trace ID no matter what the header looks like.
func FuzzTraceparentMiddleware(f *testing.F) {
	ts := testDataset(1, 7)
	ix := search.NewIndex(testDataset(20, 1), search.NewBiBranch())
	s := New(ix, quietConfig())
	body, _ := json.Marshal(KNNRequest{Tree: ts[0].String(), K: 3})

	f.Add("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	f.Add("ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	f.Add("00-00000000000000000000000000000000-00f067aa0ba902b7-01")
	f.Add("not a header at all")
	f.Add("00-")
	f.Fuzz(func(t *testing.T, header string) {
		req := httptest.NewRequest(http.MethodPost, "/v1/knn", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("traceparent", header)
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, req)
		if rec.Code != 200 {
			t.Fatalf("header %q: status %d", header, rec.Code)
		}
		got := rec.Header().Get("X-Trace-Id")
		if _, ok := obs.ParseTraceID(got); !ok {
			t.Fatalf("header %q: X-Trace-Id %q invalid", header, got)
		}
		if tc, err := obs.ParseTraceparent(header); err == nil && tc.TraceID.String() != got {
			t.Fatalf("valid header %q not continued: got %s", header, got)
		}
	})
}

// TestExportPipelineEndToEnd: normal traffic with full head sampling
// reaches the sink as valid OTLP batches; /metrics reports the
// pipeline's health in both JSON and Prometheus form.
func TestExportPipelineEndToEnd(t *testing.T) {
	noLeaks(t)
	s, hs, sink := newTracingServer(t, quietConfig())
	ts := testDataset(5, 3)
	for i := 0; i < 5; i++ {
		if code := postJSON(t, hs.URL+"/v1/knn", KNNRequest{Tree: ts[i].String(), K: 3}, nil); code != 200 {
			t.Fatalf("knn %d status %d", i, code)
		}
	}

	var snap Snapshot
	if code := getJSON(t, hs.URL+"/metrics", &snap); code != 200 {
		t.Fatalf("metrics status %d", code)
	}
	if snap.OTLPExport.Offered != 5 {
		t.Fatalf("otlp_export.offered %d, want 5", snap.OTLPExport.Offered)
	}

	resp, err := http.Get(hs.URL + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, family := range []string{
		"treesim_otlp_offered_total", "treesim_otlp_dropped_total",
		"treesim_otlp_batch_latency_seconds", "treesim_profile_captured_total",
	} {
		if !bytes.Contains(prom, []byte(family)) {
			t.Errorf("prom exposition missing %s", family)
		}
	}

	shutdownServer(t, s)
	sink.mu.Lock()
	batches, spans := sink.batches, sink.spans
	sink.mu.Unlock()
	if batches < 1 || spans < 5 {
		t.Fatalf("sink saw %d batches / %d spans, want >=1 / >=5", batches, spans)
	}
	if st := s.Exporter().Stats(); st.Dropped != 0 {
		t.Fatalf("exporter dropped %d", st.Dropped)
	}
}

// TestTailProfileLinkedToTrace: a request that fails its deadline is
// retained as an error, triggers a CPU profile capture, and the
// /debug/traces/{trace_id} entry links to the /debug/profiles payload.
func TestTailProfileLinkedToTrace(t *testing.T) {
	noLeaks(t)
	cfg := quietConfig()
	cfg.QueryTimeout = time.Nanosecond // every query 504s: deterministic error tail
	cfg.ProfileCapture = 20 * time.Millisecond
	// Fast token refill: runtime/pprof allows one CPU profile per process,
	// so a capture can lose the profiler to another test's server in this
	// binary; quick retries on fresh requests ride that out.
	cfg.ProfileEvery = 20 * time.Millisecond
	s, hs, _ := newTracingServer(t, cfg)
	ts := testDataset(1, 7)
	body, _ := json.Marshal(KNNRequest{Tree: ts[0].String(), K: 3})

	// Fire deadline-failing requests until one of their triggers wins the
	// CPU profiler and a capture lands. Every 504 is retained as an error
	// trace, so whichever request the profile attributes itself to is
	// still resolvable below.
	deadline := time.Now().Add(20 * time.Second)
	for s.Profiler().Stats().Captured == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("profiler never captured; stats %+v", s.Profiler().Stats())
		}
		req, _ := http.NewRequest(http.MethodPost, hs.URL+"/v1/knn", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		if resp.StatusCode != http.StatusGatewayTimeout {
			t.Fatalf("status %d, want 504", resp.StatusCode)
		}
		time.Sleep(25 * time.Millisecond)
	}
	list0 := s.Profiler().List()
	if len(list0) == 0 {
		t.Fatal("captured but ring empty")
	}
	traceID := list0[len(list0)-1].TraceID // oldest capture's trace

	// The trace resolves by trace ID and links its profile.
	var tr DebugTraceResponse
	if code := getJSON(t, hs.URL+"/debug/traces/"+traceID, &tr); code != 200 {
		t.Fatalf("debug/traces/{trace_id} status %d", code)
	}
	if tr.TraceID != traceID || tr.Class != obs.TraceError {
		t.Fatalf("retained trace %+v, want trace %s class error", tr.RetainedTrace, traceID)
	}
	if tr.ProfileID == "" {
		t.Fatal("retained trace carries no profile_id")
	}

	var list DebugProfilesResponse
	if code := getJSON(t, hs.URL+"/debug/profiles", &list); code != 200 {
		t.Fatalf("debug/profiles status %d", code)
	}
	found := false
	for _, cp := range list.Profiles {
		found = found || cp.TraceID == traceID
	}
	if !found {
		t.Fatalf("profile list %+v not linked to trace %s", list.Profiles, traceID)
	}

	// The payload is pprof-gzip bytes.
	presp, err := http.Get(hs.URL + "/debug/profiles/" + tr.ProfileID)
	if err != nil {
		t.Fatal(err)
	}
	payload, _ := io.ReadAll(presp.Body)
	presp.Body.Close()
	if presp.StatusCode != 200 || len(payload) < 2 {
		t.Fatalf("profile fetch status %d, %d bytes", presp.StatusCode, len(payload))
	}
	if payload[0] != 0x1f || payload[1] != 0x8b {
		t.Fatalf("profile payload not gzip-framed: % x", payload[:2])
	}
	if code := getJSON(t, hs.URL+"/debug/profiles/p999999", nil); code != 404 {
		t.Fatalf("unknown profile status %d, want 404", code)
	}
	shutdownServer(t, s)
}

// TestTraceSampleZeroExportsOnlyTails: with head sampling off, a normal
// fast request (post-warmup, so it loses the tail classes) may still
// export only if the recorder retained it; an unsampled inbound header
// with flags 00 must not force export by itself. We pin the cheap
// invariant: offered count never exceeds what the middleware classified
// as exportable, and a sampled inbound header does force export.
func TestTraceSampleZeroExportsOnlyTails(t *testing.T) {
	noLeaks(t)
	cfg := quietConfig()
	cfg.TraceRing = -1 // no recorder: no tails, no baseline retention
	sink := newTestOTLPSink(t)
	collector := httptest.NewServer(sink)
	t.Cleanup(collector.Close)
	cfg.OTLPEndpoint = collector.URL
	cfg.TraceSample = -1 // sentinel below zero so newTracingServer's default doesn't apply
	ix := search.NewIndex(testDataset(20, 1), search.NewBiBranch())
	s := New(ix, cfg)
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	ts := testDataset(2, 9)

	// Unsampled: no export.
	if code := postJSON(t, hs.URL+"/v1/knn", KNNRequest{Tree: ts[0].String(), K: 3}, nil); code != 200 {
		t.Fatalf("knn status %d", code)
	}
	// Caller-sampled: exported despite rate 0.
	const callerTrace = "4bf92f3577b34da6a3ce929d0e0e4736"
	body, _ := json.Marshal(KNNRequest{Tree: ts[1].String(), K: 3})
	req, _ := http.NewRequest(http.MethodPost, hs.URL+"/v1/knn", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("traceparent", "00-"+callerTrace+"-00f067aa0ba902b7-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()

	shutdownServer(t, s)
	sink.mu.Lock()
	defer sink.mu.Unlock()
	if len(sink.traces[callerTrace]) != 1 {
		t.Fatalf("caller-sampled trace exported %d times, want 1", len(sink.traces[callerTrace]))
	}
	if len(sink.traces) != 1 {
		t.Fatalf("unsampled traffic leaked into export: %v", sink.traces)
	}
}

// TestShutdownStopsTracingWorkers: a server with exporter and profiler
// enabled tears both down on Shutdown — covered by noLeaks, plus the
// explicit post-shutdown behavior: offers after close are dropped, not
// hung.
func TestShutdownStopsTracingWorkers(t *testing.T) {
	noLeaks(t)
	s, hs, _ := newTracingServer(t, quietConfig())
	ts := testDataset(1, 7)
	if code := postJSON(t, hs.URL+"/v1/knn", KNNRequest{Tree: ts[0].String(), K: 3}, nil); code != 200 {
		t.Fatalf("knn status %d", code)
	}
	shutdownServer(t, s)
	if s.Profiler().Trigger("t", "r", "slow") {
		t.Error("profiler accepted a trigger after Shutdown")
	}
	// Close is idempotent through Shutdown's path.
	if err := s.Exporter().Close(context.Background()); err != nil {
		t.Errorf("second exporter close: %v", err)
	}
}
