package server

import (
	"net/http"
	"runtime/debug"
	"sync"
)

// BuildInfo identifies the running binary: the Go toolchain that built it
// and, when the binary was built inside a git checkout, the VCS revision
// it was built from. Everything comes from runtime/debug.ReadBuildInfo —
// no linker flags or build scripts required, so `go build` anywhere
// produces a binary that can say what it is.
type BuildInfo struct {
	GoVersion string `json:"go_version"`
	// Module is the main module path ("treesim").
	Module string `json:"module,omitempty"`
	// Revision is the VCS commit the binary was built from; empty when the
	// build had no VCS metadata (e.g. `go test` binaries, vendored builds).
	Revision string `json:"revision,omitempty"`
	// Time is the commit time, RFC3339.
	Time string `json:"time,omitempty"`
	// Dirty reports uncommitted changes in the build's working tree.
	Dirty bool `json:"dirty,omitempty"`
}

var (
	buildInfoOnce sync.Once
	buildInfo     BuildInfo
)

// Build returns the binary's build identity (computed once).
func Build() BuildInfo {
	buildInfoOnce.Do(func() {
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		buildInfo.GoVersion = bi.GoVersion
		buildInfo.Module = bi.Main.Path
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				buildInfo.Revision = s.Value
			case "vcs.time":
				buildInfo.Time = s.Value
			case "vcs.modified":
				buildInfo.Dirty = s.Value == "true"
			}
		}
	})
	return buildInfo
}

// VersionResponse answers GET /version.
type VersionResponse struct {
	BuildInfo
	IndexSize   int    `json:"index_size"`
	IndexFilter string `json:"index_filter"`
}

func (s *Server) handleVersion(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, VersionResponse{
		BuildInfo:   Build(),
		IndexSize:   s.ix.Size(),
		IndexFilter: s.ix.Filter().Name(),
	})
}
