package server

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestVersionEndpoint: GET /version identifies the binary (Go toolchain at
// minimum; VCS revision when the build had one) and the live index.
func TestVersionEndpoint(t *testing.T) {
	_, hs, _ := newTestServer(t, quietConfig(), 10, 70)
	var v VersionResponse
	if code := getJSON(t, hs.URL+"/version", &v); code != 200 {
		t.Fatalf("version status %d", code)
	}
	if v.GoVersion == "" {
		t.Error("version response lacks go_version")
	}
	if v.IndexSize != 10 {
		t.Errorf("index_size %d, want 10", v.IndexSize)
	}
	if v.IndexFilter == "" {
		t.Error("version response lacks index_filter")
	}
}

// TestPromBuildAndFilterFamilies: the Prometheus exposition carries the
// build-info gauge and the filter-quality histogram families, fed by a
// served query.
func TestPromBuildAndFilterFamilies(t *testing.T) {
	_, hs, ts := newTestServer(t, quietConfig(), 40, 71)
	if code := postJSON(t, hs.URL+"/v1/knn", KNNRequest{Tree: ts[5].String(), K: 3}, nil); code != 200 {
		t.Fatalf("knn status %d", code)
	}
	resp, err := http.Get(hs.URL + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	for _, family := range []string{
		"treesim_build_info",
		"treesim_filter_candidates",
		"treesim_filter_false_positive_ratio",
		"treesim_filter_tightness_ratio",
		"treesim_query_candidates_total",
		"treesim_query_false_positives_total",
	} {
		if !strings.Contains(text, "# TYPE "+family+" ") {
			t.Errorf("exposition lacks family %s", family)
		}
	}
	if !strings.Contains(text, `go_version=`) {
		t.Error("build info gauge lacks go_version label")
	}
	// The served query fed the candidates histogram.
	if !strings.Contains(text, "treesim_filter_candidates_count 1") {
		t.Error("filter candidates histogram not fed by the query")
	}
}
