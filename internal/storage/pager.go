// Package storage implements a paged, buffer-managed store for tree
// datasets, so the I/O side of the paper's claims can be measured: the
// evaluation's "% of accessed data" is exactly the fraction of stored
// trees a query must fetch from disk for exact distance computation, and
// the conclusion advertises "CPU and I/O efficient solutions". The store
// counts physical page reads through an LRU buffer pool, letting the
// experiment harness report pages-per-query for filtered versus sequential
// search.
//
// Layout: a header page (magic, record count, directory location),
// followed by data pages holding the canonical text encodings of the
// trees back to back (records may span pages), followed by the directory
// (per record: byte offset and length).
package storage

import (
	"fmt"
	"io"
	"os"
)

// PageSize is the unit of I/O accounting.
const PageSize = 4096

// Pager reads fixed-size pages from an underlying file and counts
// physical reads. The zero value is unusable; open through TreeStore.
type Pager struct {
	f     *os.File
	pages int64
	reads int64
}

func newPager(f *os.File) (*Pager, error) {
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	return &Pager{
		f:     f,
		pages: (st.Size() + PageSize - 1) / PageSize,
	}, nil
}

// Pages returns the number of pages in the file.
func (p *Pager) Pages() int64 { return p.pages }

// Reads returns the number of physical page reads so far.
func (p *Pager) Reads() int64 { return p.reads }

// ReadPage fetches page pid into a PageSize buffer. The final page is
// zero-padded.
func (p *Pager) ReadPage(pid int64, buf []byte) error {
	if pid < 0 || pid >= p.pages {
		return fmt.Errorf("storage: page %d out of range [0,%d)", pid, p.pages)
	}
	if len(buf) != PageSize {
		return fmt.Errorf("storage: page buffer must be %d bytes", PageSize)
	}
	n, err := p.f.ReadAt(buf, pid*PageSize)
	if err != nil && err != io.EOF {
		return err
	}
	for i := n; i < PageSize; i++ {
		buf[i] = 0
	}
	p.reads++
	return nil
}

func (p *Pager) close() error { return p.f.Close() }
