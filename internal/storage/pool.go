package storage

import "container/list"

// Pool is an LRU buffer pool over a Pager. Requests for cached pages are
// hits (no physical read); misses evict the least recently used frame.
// The pool is not safe for concurrent use; wrap externally if needed.
type Pool struct {
	pager    *Pager
	capacity int
	frames   map[int64]*list.Element // page id → LRU element
	lru      *list.List              // front = most recently used
	requests int64
	hits     int64
}

type frame struct {
	pid int64
	buf []byte
}

// NewPool creates a buffer pool holding up to capacity pages (minimum 1).
func NewPool(p *Pager, capacity int) *Pool {
	if capacity < 1 {
		capacity = 1
	}
	return &Pool{
		pager:    p,
		capacity: capacity,
		frames:   make(map[int64]*list.Element, capacity),
		lru:      list.New(),
	}
}

// Page returns the contents of page pid. The returned slice is owned by
// the pool and valid until the page is evicted; callers must not modify
// it and should copy anything they keep.
func (p *Pool) Page(pid int64) ([]byte, error) {
	p.requests++
	if el, ok := p.frames[pid]; ok {
		p.hits++
		p.lru.MoveToFront(el)
		return el.Value.(*frame).buf, nil
	}
	var buf []byte
	if p.lru.Len() >= p.capacity {
		// Reuse the evicted frame's buffer.
		back := p.lru.Back()
		victim := back.Value.(*frame)
		delete(p.frames, victim.pid)
		p.lru.Remove(back)
		buf = victim.buf
	} else {
		buf = make([]byte, PageSize)
	}
	if err := p.pager.ReadPage(pid, buf); err != nil {
		return nil, err
	}
	p.frames[pid] = p.lru.PushFront(&frame{pid: pid, buf: buf})
	return buf, nil
}

// Stats returns the logical page requests, cache hits, and physical reads
// since the pool was created.
func (p *Pool) Stats() (requests, hits, physicalReads int64) {
	return p.requests, p.hits, p.pager.Reads()
}

// ResetStats zeroes the request/hit counters (physical reads are owned by
// the pager and keep accumulating).
func (p *Pool) ResetStats() {
	p.requests, p.hits = 0, 0
}

// Drop empties the pool, forcing subsequent requests to hit the pager.
func (p *Pool) Drop() {
	p.frames = make(map[int64]*list.Element, p.capacity)
	p.lru.Init()
}
