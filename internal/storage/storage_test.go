package storage

import (
	"os"
	"path/filepath"
	"testing"

	"treesim/internal/datagen"
	"treesim/internal/tree"
)

func storeDataset(n int) []*tree.Tree {
	spec := datagen.Spec{FanoutMean: 3, FanoutStd: 1, SizeMean: 30, SizeStd: 8, Labels: 6, Decay: 0.1}
	return datagen.New(spec, 101).Dataset(n, 8)
}

func createStore(t *testing.T, ts []*tree.Tree, poolPages int) *TreeStore {
	t.Helper()
	path := filepath.Join(t.TempDir(), "data.tsst")
	if err := Create(path, ts); err != nil {
		t.Fatal(err)
	}
	s, err := Open(path, poolPages)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestRoundTrip(t *testing.T) {
	ts := storeDataset(100)
	s := createStore(t, ts, 16)
	if s.Len() != len(ts) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(ts))
	}
	for i, want := range ts {
		got, err := s.Tree(i)
		if err != nil {
			t.Fatal(err)
		}
		if !tree.Equal(got, want) {
			t.Fatalf("record %d changed in round trip", i)
		}
	}
	// ReadAll agrees.
	all, err := s.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	for i := range all {
		if !tree.Equal(all[i], ts[i]) {
			t.Fatalf("ReadAll record %d differs", i)
		}
	}
}

func TestRecordsSpanPages(t *testing.T) {
	// One giant tree (a long path) spans several pages.
	n := &tree.Node{Label: "root"}
	cur := n
	for i := 0; i < 3000; i++ {
		c := &tree.Node{Label: "node"}
		cur.Children = []*tree.Node{c}
		cur = c
	}
	big := tree.New(n)
	ts := []*tree.Tree{tree.MustParse("a"), big, tree.MustParse("b(c)")}
	s := createStore(t, ts, 8)
	for i, want := range ts {
		got, err := s.Tree(i)
		if err != nil {
			t.Fatal(err)
		}
		if !tree.Equal(got, want) {
			t.Fatalf("record %d corrupted across pages", i)
		}
	}
	if s.DataPages() < 3 {
		t.Errorf("expected multi-page data region, got %d pages", s.DataPages())
	}
}

func TestBufferPoolCounts(t *testing.T) {
	ts := storeDataset(200)
	s := createStore(t, ts, 4)
	s.Pool().ResetStats()

	// First scan: mostly misses.
	if _, err := s.ReadAll(); err != nil {
		t.Fatal(err)
	}
	req1, hits1, phys1 := s.Pool().Stats()
	if req1 == 0 || phys1 == 0 {
		t.Fatal("no I/O recorded")
	}
	// Sequential scan through a tiny pool still hits within pages
	// (consecutive records share pages) but must physically read every
	// data page at least once.
	if phys1 < s.DataPages() {
		t.Errorf("physical reads %d below data pages %d", phys1, s.DataPages())
	}
	if hits1 >= req1 {
		t.Errorf("hits %d not below requests %d", hits1, req1)
	}

	// Re-reading one record repeatedly is all hits.
	if _, err := s.Tree(0); err != nil {
		t.Fatal(err)
	}
	_, hBefore, pBefore := s.Pool().Stats()
	for i := 0; i < 10; i++ {
		if _, err := s.Tree(0); err != nil {
			t.Fatal(err)
		}
	}
	_, hAfter, pAfter := s.Pool().Stats()
	if pAfter != pBefore {
		t.Errorf("re-reads caused %d physical reads", pAfter-pBefore)
	}
	if hAfter <= hBefore {
		t.Error("re-reads not served from the pool")
	}
}

func TestPoolEviction(t *testing.T) {
	ts := storeDataset(300)
	s := createStore(t, ts, 2) // tiny pool forces eviction
	if _, err := s.ReadAll(); err != nil {
		t.Fatal(err)
	}
	first, err := s.Tree(0)
	if err != nil {
		t.Fatal(err)
	}
	if !tree.Equal(first, ts[0]) {
		t.Error("record corrupted after eviction cycling")
	}
	// Drop empties the pool: next read is physical again.
	_, _, p1 := s.Pool().Stats()
	s.Pool().Drop()
	if _, err := s.Tree(0); err != nil {
		t.Fatal(err)
	}
	_, _, p2 := s.Pool().Stats()
	if p2 <= p1 {
		t.Error("Drop did not force a physical read")
	}
}

func TestOpenErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := Open(filepath.Join(dir, "missing"), 4); err == nil {
		t.Error("missing file opened")
	}
	bad := filepath.Join(dir, "bad")
	if err := os.WriteFile(bad, []byte("not a store at all, definitely not"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(bad, 4); err == nil {
		t.Error("garbage file opened")
	}
}

func TestCreateRejectsEmptyTree(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x")
	if err := Create(path, []*tree.Tree{tree.New(nil)}); err == nil {
		t.Error("empty tree stored")
	}
}

func TestTreeOutOfRange(t *testing.T) {
	s := createStore(t, storeDataset(5), 4)
	if _, err := s.Tree(-1); err == nil {
		t.Error("negative id accepted")
	}
	if _, err := s.Tree(5); err == nil {
		t.Error("out-of-range id accepted")
	}
}

func TestPagerPagesAndPoolFloor(t *testing.T) {
	s := createStore(t, storeDataset(50), 0) // capacity floors at 1
	if s.pager.Pages() < 2 {
		t.Errorf("Pages = %d, want at least header+data", s.pager.Pages())
	}
	// Pool with capacity floor still serves reads correctly.
	for i := 0; i < 5; i++ {
		if _, err := s.Tree(i); err != nil {
			t.Fatal(err)
		}
	}
	req, hits, phys := s.Pool().Stats()
	if req == 0 || phys == 0 || hits > req {
		t.Errorf("stats implausible: req=%d hits=%d phys=%d", req, hits, phys)
	}
}

func TestPagerBounds(t *testing.T) {
	s := createStore(t, storeDataset(5), 4)
	buf := make([]byte, PageSize)
	if err := s.pager.ReadPage(-1, buf); err == nil {
		t.Error("negative page accepted")
	}
	if err := s.pager.ReadPage(1<<40, buf); err == nil {
		t.Error("out-of-range page accepted")
	}
	if err := s.pager.ReadPage(0, make([]byte, 10)); err == nil {
		t.Error("short buffer accepted")
	}
}
