package storage

import (
	"encoding/binary"
	"fmt"
	"os"

	"treesim/internal/tree"
)

// File format:
//
//	page 0 (header): magic "TSST1\x00", u64 record count, u64 directory
//	                 byte offset, u64 data byte length
//	data region:     canonical tree encodings back to back, starting at
//	                 page 1; records may span pages
//	directory:       recordCount × (u64 offset, u32 length), immediately
//	                 after the data region (page aligned)

var storeMagic = [6]byte{'T', 'S', 'S', 'T', '1', 0}

const headerSize = 6 + 8 + 8 + 8

// TreeStore provides record-id access to a paged tree dataset through a
// buffer pool, with per-query I/O accounting.
type TreeStore struct {
	pager *Pager
	pool  *Pool
	dir   []dirEntry // loaded eagerly (the directory is small)
}

type dirEntry struct {
	off uint64
	len uint32
}

// Create writes the dataset to path in the store format.
func Create(path string, ts []*tree.Tree) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()

	// Data region.
	var dir []dirEntry
	off := uint64(PageSize) // data starts at page 1
	if _, err := f.Seek(int64(off), 0); err != nil {
		return err
	}
	for i, t := range ts {
		if t.IsEmpty() {
			return fmt.Errorf("storage: tree %d is empty", i)
		}
		enc := t.String()
		if _, err := f.WriteString(enc); err != nil {
			return err
		}
		dir = append(dir, dirEntry{off: off, len: uint32(len(enc))})
		off += uint64(len(enc))
	}
	dataEnd := off

	// Directory, page aligned.
	dirOff := (dataEnd + PageSize - 1) / PageSize * PageSize
	if _, err := f.Seek(int64(dirOff), 0); err != nil {
		return err
	}
	var rec [12]byte
	for _, e := range dir {
		binary.LittleEndian.PutUint64(rec[0:8], e.off)
		binary.LittleEndian.PutUint32(rec[8:12], e.len)
		if _, err := f.Write(rec[:]); err != nil {
			return err
		}
	}

	// Header.
	hdr := make([]byte, headerSize)
	copy(hdr, storeMagic[:])
	binary.LittleEndian.PutUint64(hdr[6:14], uint64(len(ts)))
	binary.LittleEndian.PutUint64(hdr[14:22], dirOff)
	binary.LittleEndian.PutUint64(hdr[22:30], dataEnd-PageSize)
	if _, err := f.WriteAt(hdr, 0); err != nil {
		return err
	}
	return f.Sync()
}

// Open opens a store with a buffer pool of poolPages pages.
func Open(path string, poolPages int) (*TreeStore, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	pager, err := newPager(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	s := &TreeStore{pager: pager, pool: NewPool(pager, poolPages)}

	hdr := make([]byte, PageSize)
	if err := pager.ReadPage(0, hdr); err != nil {
		f.Close()
		return nil, err
	}
	if [6]byte(hdr[:6]) != storeMagic {
		f.Close()
		return nil, fmt.Errorf("storage: bad magic in %s", path)
	}
	count := binary.LittleEndian.Uint64(hdr[6:14])
	dirOff := binary.LittleEndian.Uint64(hdr[14:22])
	if count > 1<<32 {
		f.Close()
		return nil, fmt.Errorf("storage: implausible record count %d", count)
	}

	// Load the directory (sequential read, not counted through the pool).
	dirBytes := make([]byte, 12*count)
	if _, err := f.ReadAt(dirBytes, int64(dirOff)); err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: reading directory: %w", err)
	}
	s.dir = make([]dirEntry, count)
	for i := range s.dir {
		s.dir[i] = dirEntry{
			off: binary.LittleEndian.Uint64(dirBytes[i*12 : i*12+8]),
			len: binary.LittleEndian.Uint32(dirBytes[i*12+8 : i*12+12]),
		}
	}
	return s, nil
}

// Close releases the underlying file.
func (s *TreeStore) Close() error { return s.pager.close() }

// Len returns the number of stored trees.
func (s *TreeStore) Len() int { return len(s.dir) }

// DataPages returns the number of pages in the data region.
func (s *TreeStore) DataPages() int64 {
	if len(s.dir) == 0 {
		return 0
	}
	last := s.dir[len(s.dir)-1]
	end := last.off + uint64(last.len)
	return int64((end+PageSize-1)/PageSize) - 1 // minus the header page
}

// Tree fetches and parses record id, pulling its pages through the buffer
// pool.
func (s *TreeStore) Tree(id int) (*tree.Tree, error) {
	if id < 0 || id >= len(s.dir) {
		return nil, fmt.Errorf("storage: record %d out of range [0,%d)", id, len(s.dir))
	}
	e := s.dir[id]
	buf := make([]byte, e.len)
	filled := 0
	for filled < int(e.len) {
		byteOff := e.off + uint64(filled)
		pid := int64(byteOff / PageSize)
		within := int(byteOff % PageSize)
		page, err := s.pool.Page(pid)
		if err != nil {
			return nil, err
		}
		filled += copy(buf[filled:], page[within:])
	}
	t, err := tree.Parse(string(buf))
	if err != nil {
		return nil, fmt.Errorf("storage: record %d corrupt: %w", id, err)
	}
	return t, nil
}

// Pool exposes the buffer pool for I/O accounting.
func (s *TreeStore) Pool() *Pool { return s.pool }

// ReadAll parses every record in order (a sequential scan).
func (s *TreeStore) ReadAll() ([]*tree.Tree, error) {
	out := make([]*tree.Tree, len(s.dir))
	for i := range s.dir {
		t, err := s.Tree(i)
		if err != nil {
			return nil, err
		}
		out[i] = t
	}
	return out, nil
}
