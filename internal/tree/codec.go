package tree

import (
	"fmt"
	"strings"
)

// The canonical text format for trees:
//
//	tree  := node
//	node  := label [ "(" node ("," node)* ")" ]
//	label := bare | "'" escaped "'"
//
// A bare label is any non-empty run of characters excluding "(", ")", ",",
// "'" and whitespace. Labels containing those characters (or empty labels)
// are written single-quoted, with "\\" escaping "'" and "\\" itself.
// Whitespace between tokens is ignored. Examples:
//
//	a
//	a(b,c)
//	a(b(c,d),e)
//	'has space'('x,y')

// Format renders the tree in the canonical text format. It is equivalent to
// t.String and exists for symmetry with Parse.
func Format(t *Tree) string { return t.String() }

func formatNode(sb *strings.Builder, n *Node) {
	formatLabel(sb, n.Label)
	if len(n.Children) == 0 {
		return
	}
	sb.WriteByte('(')
	for i, c := range n.Children {
		if i > 0 {
			sb.WriteByte(',')
		}
		formatNode(sb, c)
	}
	sb.WriteByte(')')
}

// formatLabel writes the label byte-exactly: labels are arbitrary byte
// strings (not necessarily valid UTF-8), so quoting operates on bytes,
// escaping only the quote and the backslash.
func formatLabel(sb *strings.Builder, label string) {
	if bareLabel(label) {
		sb.WriteString(label)
		return
	}
	sb.WriteByte('\'')
	for i := 0; i < len(label); i++ {
		b := label[i]
		if b == '\'' || b == '\\' {
			sb.WriteByte('\\')
		}
		sb.WriteByte(b)
	}
	sb.WriteByte('\'')
}

// bareLabel reports whether the label can be written without quotes: no
// structural bytes, no backslash, and nothing at or below ASCII space
// (which covers all whitespace and control characters the parser treats
// specially or rejects between tokens).
func bareLabel(label string) bool {
	if label == "" {
		return false
	}
	for i := 0; i < len(label); i++ {
		switch b := label[i]; {
		case b == '(' || b == ')' || b == ',' || b == '\'' || b == '\\':
			return false
		case b <= ' ':
			return false
		}
	}
	return true
}

// Parse decodes a tree from the canonical text format produced by Format.
// The empty string (or a string of only whitespace) parses to the empty
// tree.
func Parse(s string) (*Tree, error) {
	p := &parser{src: s}
	p.skipSpace()
	if p.eof() {
		return New(nil), nil
	}
	root, err := p.parseNode()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if !p.eof() {
		return nil, fmt.Errorf("tree: trailing input at offset %d: %q", p.off, p.rest())
	}
	return New(root), nil
}

// MustParse is Parse that panics on error; it is intended for tests and
// examples with literal inputs.
func MustParse(s string) *Tree {
	t, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return t
}

type parser struct {
	src string
	off int
}

func (p *parser) eof() bool    { return p.off >= len(p.src) }
func (p *parser) peek() byte   { return p.src[p.off] }
func (p *parser) rest() string { return p.src[p.off:] }

func (p *parser) skipSpace() {
	for !p.eof() && (p.peek() == ' ' || p.peek() == '\t' || p.peek() == '\n' || p.peek() == '\r') {
		p.off++
	}
}

func (p *parser) parseNode() (*Node, error) {
	label, err := p.parseLabel()
	if err != nil {
		return nil, err
	}
	n := &Node{Label: label}
	p.skipSpace()
	if p.eof() || p.peek() != '(' {
		return n, nil
	}
	p.off++ // consume '('
	for {
		p.skipSpace()
		child, err := p.parseNode()
		if err != nil {
			return nil, err
		}
		n.Children = append(n.Children, child)
		p.skipSpace()
		if p.eof() {
			return nil, fmt.Errorf("tree: unterminated child list for %q", label)
		}
		switch p.peek() {
		case ',':
			p.off++
		case ')':
			p.off++
			return n, nil
		default:
			return nil, fmt.Errorf("tree: expected ',' or ')' at offset %d, found %q", p.off, p.peek())
		}
	}
}

func (p *parser) parseLabel() (string, error) {
	p.skipSpace()
	if p.eof() {
		return "", fmt.Errorf("tree: expected label at offset %d", p.off)
	}
	if p.peek() == '\'' {
		return p.parseQuoted()
	}
	start := p.off
	for !p.eof() {
		c := p.peek()
		if c == '(' || c == ')' || c == ',' || c == '\'' || c == '\\' || c <= ' ' {
			break
		}
		p.off++
	}
	if p.off == start {
		return "", fmt.Errorf("tree: expected label at offset %d, found %q", p.off, p.peek())
	}
	return p.src[start:p.off], nil
}

func (p *parser) parseQuoted() (string, error) {
	p.off++ // consume opening quote
	var sb strings.Builder
	for !p.eof() {
		c := p.peek()
		p.off++
		switch c {
		case '\'':
			return sb.String(), nil
		case '\\':
			if p.eof() {
				return "", fmt.Errorf("tree: dangling escape at offset %d", p.off)
			}
			sb.WriteByte(p.peek())
			p.off++
		default:
			sb.WriteByte(c)
		}
	}
	return "", fmt.Errorf("tree: unterminated quoted label")
}
