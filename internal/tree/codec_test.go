package tree

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseFormatRoundTrip(t *testing.T) {
	cases := []string{
		"",
		"a",
		"a(b)",
		"a(b,c)",
		"a(b(c,d),b(c,d),e)",
		"'has space'",
		"'x,y'(a,'(')",
		"''",      // empty label
		"'it''s'", // two adjacent quoted? no — single label "it" then junk; skip
	}
	// Last case is actually invalid; handle separately below.
	for _, c := range cases[:len(cases)-1] {
		tr, err := Parse(c)
		if err != nil {
			t.Errorf("Parse(%q): %v", c, err)
			continue
		}
		out := tr.String()
		tr2, err := Parse(out)
		if err != nil {
			t.Errorf("re-Parse(%q): %v", out, err)
			continue
		}
		if !Equal(tr, tr2) {
			t.Errorf("round trip of %q changed the tree: %q", c, out)
		}
	}
}

func TestParseWhitespace(t *testing.T) {
	a := MustParse(" a ( b , c ( d ) ) ")
	b := MustParse("a(b,c(d))")
	if !Equal(a, b) {
		t.Error("whitespace should be ignored between tokens")
	}
}

func TestParseEscapes(t *testing.T) {
	tr := MustParse(`'it\'s'('a\\b')`)
	if tr.Root.Label != "it's" {
		t.Errorf("root label = %q, want %q", tr.Root.Label, "it's")
	}
	if tr.Root.Children[0].Label != `a\b` {
		t.Errorf("child label = %q, want %q", tr.Root.Children[0].Label, `a\b`)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"a(",
		"a(b",
		"a(b,)", // missing label after comma... wait: ')' follows ','
		"a)",    // trailing input
		"a(b))", // trailing input
		"(a)",   // missing label
		"a(,b)", // missing label
		"'unclosed",
		`'dangling\`,
		"a b",     // trailing input
		"a('x'y)", // quoted label followed by junk label? -> 'x' then y unexpected
	}
	for _, c := range bad {
		if _, err := Parse(c); err == nil {
			t.Errorf("Parse(%q) unexpectedly succeeded", c)
		}
	}
}

// randomTree builds a random tree with n nodes and labels (possibly nasty
// ones) drawn from the given alphabet.
func randomTree(rng *rand.Rand, n int, alphabet []string) *Tree {
	if n <= 0 {
		return New(nil)
	}
	nodes := make([]*Node, n)
	for i := range nodes {
		nodes[i] = &Node{Label: alphabet[rng.Intn(len(alphabet))]}
	}
	for i := 1; i < n; i++ {
		p := nodes[rng.Intn(i)]
		p.Children = append(p.Children, nodes[i])
	}
	return New(nodes[0])
}

func TestRoundTripQuick(t *testing.T) {
	alphabet := []string{"a", "b", "label", "", "with space", "x,y", "(", ")", "'", `\`, "ε"}
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64, size uint8) bool {
		r := rand.New(rand.NewSource(seed))
		tr := randomTree(r, int(size)%40, alphabet)
		got, err := Parse(tr.String())
		if err != nil {
			t.Logf("Parse(%q): %v", tr.String(), err)
			return false
		}
		return Equal(tr, got)
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestFormatFunction(t *testing.T) {
	tr := MustParse("a(b,c)")
	if Format(tr) != tr.String() {
		t.Error("Format and String disagree")
	}
	if Format(New(nil)) != "" {
		t.Error("empty tree should format to empty string")
	}
}

func TestFormatQuoting(t *testing.T) {
	tr := New(NewNode("with space", NewNode("a,b")))
	s := tr.String()
	if !strings.Contains(s, "'with space'") || !strings.Contains(s, "'a,b'") {
		t.Errorf("special labels should be quoted, got %q", s)
	}
}
