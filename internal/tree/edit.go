package tree

import (
	"errors"
	"fmt"
)

// The three edit operations of Section 2.1. Each operation mutates the tree
// in place and corresponds to exactly one unit of unit-cost edit distance:
//
//   - Relabel changes the label of a node.
//   - Delete removes a node n, splicing n's children into n's former
//     position among the children of n's parent.
//   - Insert adds a node n under a parent node, adopting a consecutive run
//     of the parent's children as the children of n.
//
// The root may only be deleted when it has exactly one child (the child
// becomes the new root); otherwise deletion would leave a forest.

// ErrNotInTree is returned when an operation names a node that is not part
// of the target tree.
var ErrNotInTree = errors.New("tree: node is not part of the tree")

// Relabel changes the label of n to label.
func Relabel(n *Node, label string) { n.Label = label }

// Delete removes n from t. The children of n take n's place, in order,
// among the children of n's parent. Deleting the root is allowed only when
// the root has exactly one child.
func Delete(t *Tree, n *Node) error {
	if t.IsEmpty() {
		return ErrNotInTree
	}
	if n == t.Root {
		switch len(n.Children) {
		case 0:
			t.Root = nil
			return nil
		case 1:
			t.Root = n.Children[0]
			return nil
		default:
			return fmt.Errorf("tree: cannot delete root %q with %d children", n.Label, len(n.Children))
		}
	}
	parent, idx := findParent(t.Root, n)
	if parent == nil {
		return ErrNotInTree
	}
	// Splice n's children into n's slot.
	repl := make([]*Node, 0, len(parent.Children)-1+len(n.Children))
	repl = append(repl, parent.Children[:idx]...)
	repl = append(repl, n.Children...)
	repl = append(repl, parent.Children[idx+1:]...)
	parent.Children = repl
	n.Children = nil
	return nil
}

// findParent returns the parent of target under root and target's index
// among the parent's children, or (nil, -1) if target is not reachable.
func findParent(root, target *Node) (*Node, int) {
	for i, c := range root.Children {
		if c == target {
			return root, i
		}
		if p, idx := findParent(c, target); p != nil {
			return p, idx
		}
	}
	return nil, -1
}

// Insert creates a new node with the given label as the pos-th child of
// parent, adopting the count consecutive children of parent starting at pos
// as its own children. pos must be in [0, parent.Degree()] and count in
// [0, parent.Degree()-pos]. It returns the inserted node.
func Insert(t *Tree, parent *Node, pos, count int, label string) (*Node, error) {
	if t.IsEmpty() || !contains(t.Root, parent) {
		return nil, ErrNotInTree
	}
	if pos < 0 || pos > len(parent.Children) {
		return nil, fmt.Errorf("tree: insert position %d out of range [0,%d]", pos, len(parent.Children))
	}
	if count < 0 || pos+count > len(parent.Children) {
		return nil, fmt.Errorf("tree: insert child count %d out of range [0,%d]", count, len(parent.Children)-pos)
	}
	n := &Node{Label: label}
	if count > 0 {
		n.Children = make([]*Node, count)
		copy(n.Children, parent.Children[pos:pos+count])
	}
	repl := make([]*Node, 0, len(parent.Children)-count+1)
	repl = append(repl, parent.Children[:pos]...)
	repl = append(repl, n)
	repl = append(repl, parent.Children[pos+count:]...)
	parent.Children = repl
	return n, nil
}

// InsertRoot places a new node labeled label above the current root; the
// old root (if any) becomes its only child. It returns the new root.
func InsertRoot(t *Tree, label string) *Node {
	n := &Node{Label: label}
	if !t.IsEmpty() {
		n.Children = []*Node{t.Root}
	}
	t.Root = n
	return n
}

func contains(root, target *Node) bool {
	if root == target {
		return true
	}
	for _, c := range root.Children {
		if contains(c, target) {
			return true
		}
	}
	return false
}
