package tree

import "testing"

func TestRelabel(t *testing.T) {
	tr := MustParse("a(b)")
	Relabel(tr.Root.Children[0], "x")
	if tr.String() != "a(x)" {
		t.Errorf("after relabel: %q", tr.String())
	}
}

// TestDeletePaperExample reproduces the Section 3.1 example: deleting the
// second b of T1 = a(b(c,d),b(c,d),e) assigns its children c,d to a.
func TestDeletePaperExample(t *testing.T) {
	tr := paperT1()
	secondB := tr.Root.Children[1]
	if secondB.Label != "b" {
		t.Fatalf("expected b, got %q", secondB.Label)
	}
	if err := Delete(tr, secondB); err != nil {
		t.Fatal(err)
	}
	if got, want := tr.String(), "a(b(c,d),c,d,e)"; got != want {
		t.Errorf("after delete: %q, want %q", got, want)
	}
}

func TestDeleteRoot(t *testing.T) {
	tr := MustParse("a(b(c,d))")
	if err := Delete(tr, tr.Root); err != nil {
		t.Fatalf("deleting single-child root: %v", err)
	}
	if got := tr.String(); got != "b(c,d)" {
		t.Errorf("after root delete: %q", got)
	}

	tr2 := MustParse("a(b,c)")
	if err := Delete(tr2, tr2.Root); err == nil {
		t.Error("deleting multi-child root should fail")
	}

	leaf := MustParse("a")
	if err := Delete(leaf, leaf.Root); err != nil {
		t.Fatalf("deleting the only node: %v", err)
	}
	if !leaf.IsEmpty() {
		t.Error("tree should be empty after deleting its only node")
	}
}

func TestDeleteForeignNode(t *testing.T) {
	tr := MustParse("a(b)")
	if err := Delete(tr, NewNode("z")); err != ErrNotInTree {
		t.Errorf("err = %v, want ErrNotInTree", err)
	}
}

// TestInsertPaperExample inverts the Section 3.1 example: inserting b under
// a of a(b(c,d),c,d,e), adopting children 1..2 (c,d), restores T1.
func TestInsertPaperExample(t *testing.T) {
	tr := MustParse("a(b(c,d),c,d,e)")
	n, err := Insert(tr, tr.Root, 1, 2, "b")
	if err != nil {
		t.Fatal(err)
	}
	if n.Label != "b" || n.Degree() != 2 {
		t.Errorf("inserted node %q with %d children", n.Label, n.Degree())
	}
	if !Equal(tr, paperT1()) {
		t.Errorf("after insert: %q, want %q", tr.String(), paperT1().String())
	}
}

func TestInsertBounds(t *testing.T) {
	tr := MustParse("a(b,c)")
	if _, err := Insert(tr, tr.Root, 3, 0, "x"); err == nil {
		t.Error("out-of-range position accepted")
	}
	if _, err := Insert(tr, tr.Root, 1, 2, "x"); err == nil {
		t.Error("out-of-range count accepted")
	}
	if _, err := Insert(tr, NewNode("z"), 0, 0, "x"); err != ErrNotInTree {
		t.Error("foreign parent accepted")
	}
	// Inserting a leaf (count 0) at the end.
	if _, err := Insert(tr, tr.Root, 2, 0, "x"); err != nil {
		t.Errorf("valid insert rejected: %v", err)
	}
	if got := tr.String(); got != "a(b,c,x)" {
		t.Errorf("after insert: %q", got)
	}
}

func TestInsertRoot(t *testing.T) {
	tr := MustParse("a(b)")
	InsertRoot(tr, "r")
	if got := tr.String(); got != "r(a(b))" {
		t.Errorf("after InsertRoot: %q", got)
	}
	e := New(nil)
	InsertRoot(e, "r")
	if got := e.String(); got != "r" {
		t.Errorf("InsertRoot on empty tree: %q", got)
	}
}

// TestInsertDeleteInverse checks that insert and delete are inverse
// operations, as the complementarity argument of Theorem 3.2 requires.
func TestInsertDeleteInverse(t *testing.T) {
	orig := MustParse("a(b,c,d,e)")
	tr := orig.Clone()
	n, err := Insert(tr, tr.Root, 1, 2, "x")
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.String(); got != "a(b,x(c,d),e)" {
		t.Fatalf("after insert: %q", got)
	}
	if err := Delete(tr, n); err != nil {
		t.Fatal(err)
	}
	if !Equal(tr, orig) {
		t.Errorf("delete did not invert insert: %q", tr.String())
	}
}

func TestDeleteSizeInvariant(t *testing.T) {
	tr := paperT2()
	n := tr.Size()
	target := tr.Root.Children[0] // b with 3 children
	if err := Delete(tr, target); err != nil {
		t.Fatal(err)
	}
	if tr.Size() != n-1 {
		t.Errorf("size after delete = %d, want %d", tr.Size(), n-1)
	}
	if err := tr.Validate(); err != nil {
		t.Errorf("tree invalid after delete: %v", err)
	}
}
