package tree

import "testing"

// FuzzParse checks the codec's core contract on arbitrary inputs: Parse
// either fails cleanly or produces a tree whose canonical rendering parses
// back to an equal tree with a stable (fixed-point) rendering.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"a",
		"a(b,c)",
		"a(b(c,d),b(c,d),e)",
		"'with space'('x,y',z)",
		`'esc\'aped'`,
		"a(b",
		"a)",
		"(a)",
		"'unterminated",
		"  a ( b , c ) ",
		"ε(ε)",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := Parse(input)
		if err != nil {
			return // malformed input must fail cleanly, never panic
		}
		rendered := tr.String()
		tr2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("canonical rendering %q of %q does not re-parse: %v", rendered, input, err)
		}
		if !Equal(tr, tr2) {
			t.Fatalf("round trip changed the tree: %q -> %q", input, rendered)
		}
		if again := tr2.String(); again != rendered {
			t.Fatalf("rendering not a fixed point: %q vs %q", rendered, again)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("parsed tree invalid: %v", err)
		}
	})
}
