package tree

import (
	"encoding/binary"
	"hash/fnv"
)

// Structural hashing: a Merkle-style 64-bit digest over the tree's shape
// and labels. Equal trees always hash equally, so the hash serves as a
// fast pre-filter for equality tests and as a grouping key for duplicate
// detection in large collections (data cleansing, Section 1).

// Hash returns a 64-bit structural digest of the tree. Hash(a) != Hash(b)
// proves the trees differ; equal hashes are verified with Equal when exact
// answers matter.
func (t *Tree) Hash() uint64 {
	if t.IsEmpty() {
		return 0
	}
	return hashNode(t.Root)
}

func hashNode(n *Node) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(len(n.Label)))
	h.Write(buf[:])
	h.Write([]byte(n.Label))
	binary.LittleEndian.PutUint64(buf[:], uint64(len(n.Children)))
	h.Write(buf[:])
	for _, c := range n.Children {
		binary.LittleEndian.PutUint64(buf[:], hashNode(c))
		h.Write(buf[:])
	}
	return h.Sum64()
}

// Dedup partitions the collection into groups of structurally identical
// trees, returning for each distinct tree the indexes of its occurrences
// (in ascending order, grouped under the first occurrence). Hashing makes
// the expected cost linear in total node count; hash collisions are
// resolved with exact Equal comparisons, so the result is always correct.
func Dedup(ts []*Tree) map[int][]int {
	groups := make(map[int][]int)
	byHash := make(map[uint64][]int) // representative indexes per hash
	for i, t := range ts {
		h := t.Hash()
		found := -1
		for _, rep := range byHash[h] {
			if Equal(ts[rep], t) {
				found = rep
				break
			}
		}
		if found == -1 {
			byHash[h] = append(byHash[h], i)
			found = i
		}
		groups[found] = append(groups[found], i)
	}
	return groups
}
