package tree

import (
	"math/rand"
	"testing"
)

func TestHashEqualTreesEqualHashes(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	alphabet := []string{"a", "b", "c", ""}
	for trial := 0; trial < 100; trial++ {
		tr := randomTree(rng, 1+rng.Intn(30), alphabet)
		if tr.Hash() != tr.Clone().Hash() {
			t.Fatalf("clone hash differs for %s", tr)
		}
	}
}

func TestHashDistinguishes(t *testing.T) {
	pairs := [][2]string{
		{"a", "b"},
		{"a(b,c)", "a(c,b)"},
		{"a(b(c))", "a(b,c)"},
		{"a(b)", "a(b,b)"},
		{"ab", "a"}, // label boundary: not confusable with nested labels
	}
	for _, p := range pairs {
		h1, h2 := MustParse(p[0]).Hash(), MustParse(p[1]).Hash()
		if h1 == h2 {
			t.Errorf("Hash(%q) == Hash(%q)", p[0], p[1])
		}
	}
	if New(nil).Hash() != 0 {
		t.Error("empty tree hash should be 0")
	}
}

// TestHashLabelBoundaries: length-prefixed hashing must not confuse label
// splits, e.g. a node "ab" with leaf child vs node "a" with child "b...".
func TestHashLabelBoundaries(t *testing.T) {
	a := MustParse("ab(c)")
	b := MustParse("a(bc)")
	if a.Hash() == b.Hash() {
		t.Error("label boundary collision")
	}
}

func TestDedup(t *testing.T) {
	ts := []*Tree{
		MustParse("a(b,c)"), // 0
		MustParse("x"),      // 1
		MustParse("a(b,c)"), // 2: dup of 0
		MustParse("a(c,b)"), // 3: distinct
		MustParse("x"),      // 4: dup of 1
		MustParse("a(b,c)"), // 5: dup of 0
	}
	groups := Dedup(ts)
	if len(groups) != 3 {
		t.Fatalf("got %d groups, want 3: %v", len(groups), groups)
	}
	if g := groups[0]; len(g) != 3 || g[0] != 0 || g[1] != 2 || g[2] != 5 {
		t.Errorf("group of 0: %v", g)
	}
	if g := groups[1]; len(g) != 2 || g[0] != 1 || g[1] != 4 {
		t.Errorf("group of 1: %v", g)
	}
	if g := groups[3]; len(g) != 1 || g[0] != 3 {
		t.Errorf("group of 3: %v", g)
	}
}

func TestDedupEmpty(t *testing.T) {
	if groups := Dedup(nil); len(groups) != 0 {
		t.Error("empty dedup should be empty")
	}
}

func TestDedupAllSame(t *testing.T) {
	ts := make([]*Tree, 10)
	for i := range ts {
		ts[i] = MustParse("q(w,e(r))")
	}
	groups := Dedup(ts)
	if len(groups) != 1 || len(groups[0]) != 10 {
		t.Errorf("groups = %v", groups)
	}
}
