package tree

// Structural statistics used by the histogram filters of Kailing et al.
// (Section 2.2 / Section 5) and by the experiment harness.

// LabelCounts returns the number of occurrences of every label in the tree.
func (t *Tree) LabelCounts() map[string]int {
	m := make(map[string]int)
	t.Walk(func(n *Node) bool {
		m[n.Label]++
		return true
	})
	return m
}

// DegreeCounts returns, for every fanout value d that occurs, the number of
// nodes with exactly d children.
func (t *Tree) DegreeCounts() map[int]int {
	m := make(map[int]int)
	t.Walk(func(n *Node) bool {
		m[len(n.Children)]++
		return true
	})
	return m
}

// HeightCounts returns, for every node height h that occurs, the number of
// nodes whose subtree has height h. A leaf has height 1.
func (t *Tree) HeightCounts() map[int]int {
	m := make(map[int]int)
	if t.IsEmpty() {
		return m
	}
	var rec func(n *Node) int
	rec = func(n *Node) int {
		h := 0
		for _, c := range n.Children {
			if ch := rec(c); ch > h {
				h = ch
			}
		}
		h++
		m[h]++
		return h
	}
	rec(t.Root)
	return m
}

// DepthCounts returns, for every depth d (root has depth 1), the number of
// nodes at that depth.
func (t *Tree) DepthCounts() map[int]int {
	m := make(map[int]int)
	if t.IsEmpty() {
		return m
	}
	var rec func(n *Node, d int)
	rec = func(n *Node, d int) {
		m[d]++
		for _, c := range n.Children {
			rec(c, d+1)
		}
	}
	rec(t.Root, 1)
	return m
}

// AvgDepth returns the average node depth (root has depth 1); 0 for the
// empty tree. The paper reports DBLP's average depth as 2.902 under this
// convention minus one (edge count); AvgDepth uses node count on the path.
func (t *Tree) AvgDepth() float64 {
	if t.IsEmpty() {
		return 0
	}
	sum, n := 0, 0
	var rec func(nd *Node, d int)
	rec = func(nd *Node, d int) {
		sum += d
		n++
		for _, c := range nd.Children {
			rec(c, d+1)
		}
	}
	rec(t.Root, 1)
	return float64(sum) / float64(n)
}

// MaxDegree returns the largest fanout in the tree.
func (t *Tree) MaxDegree() int {
	max := 0
	t.Walk(func(n *Node) bool {
		if len(n.Children) > max {
			max = len(n.Children)
		}
		return true
	})
	return max
}
