package tree

import (
	"math"
	"reflect"
	"testing"
)

func TestLabelCounts(t *testing.T) {
	got := paperT1().LabelCounts()
	want := map[string]int{"a": 1, "b": 2, "c": 2, "d": 2, "e": 1}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("LabelCounts = %v, want %v", got, want)
	}
}

func TestDegreeCounts(t *testing.T) {
	got := paperT1().DegreeCounts()
	// a has 3 children, each b has 2, the five leaves have 0.
	want := map[int]int{3: 1, 2: 2, 0: 5}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("DegreeCounts = %v, want %v", got, want)
	}
}

func TestHeightCounts(t *testing.T) {
	got := paperT1().HeightCounts()
	// Leaves have height 1 (×5), the b's height 2 (×2), a height 3.
	want := map[int]int{1: 5, 2: 2, 3: 1}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("HeightCounts = %v, want %v", got, want)
	}
}

func TestDepthCounts(t *testing.T) {
	got := paperT2().DepthCounts()
	// T2 = a(b(c,d,b(e)),c,d,e): depth1 a; depth2 b,c,d,e; depth3 c,d,b; depth4 e.
	want := map[int]int{1: 1, 2: 4, 3: 3, 4: 1}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("DepthCounts = %v, want %v", got, want)
	}
}

func TestAvgDepth(t *testing.T) {
	// a(b): depths 1,2 → 1.5
	if got := MustParse("a(b)").AvgDepth(); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("AvgDepth = %g, want 1.5", got)
	}
	if got := New(nil).AvgDepth(); got != 0 {
		t.Errorf("AvgDepth(empty) = %g, want 0", got)
	}
}

func TestMaxDegree(t *testing.T) {
	if got := paperT2().MaxDegree(); got != 4 {
		t.Errorf("MaxDegree = %d, want 4", got)
	}
	if got := New(nil).MaxDegree(); got != 0 {
		t.Errorf("MaxDegree(empty) = %d, want 0", got)
	}
}

// TestHistogramSumsEqualSize: every histogram distributes exactly the |T|
// nodes.
func TestHistogramSumsEqualSize(t *testing.T) {
	for _, tr := range []*Tree{paperT1(), paperT2(), MustParse("a")} {
		n := tr.Size()
		sum := func(m map[int]int) int {
			s := 0
			for _, v := range m {
				s += v
			}
			return s
		}
		if s := sum(tr.DegreeCounts()); s != n {
			t.Errorf("degree histogram sums to %d, want %d", s, n)
		}
		if s := sum(tr.HeightCounts()); s != n {
			t.Errorf("height histogram sums to %d, want %d", s, n)
		}
		if s := sum(tr.DepthCounts()); s != n {
			t.Errorf("depth histogram sums to %d, want %d", s, n)
		}
		ls := 0
		for _, v := range tr.LabelCounts() {
			ls += v
		}
		if ls != n {
			t.Errorf("label histogram sums to %d, want %d", ls, n)
		}
	}
}
