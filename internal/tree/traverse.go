package tree

// Walk visits every node of the tree in preorder (node before its children,
// children left to right). The visitor returns false to prune the walk below
// the current node; the walk still continues with the node's siblings.
func (t *Tree) Walk(visit func(*Node) bool) {
	if t.IsEmpty() {
		return
	}
	walkNode(t.Root, visit)
}

func walkNode(n *Node, visit func(*Node) bool) {
	if !visit(n) {
		return
	}
	for _, c := range n.Children {
		walkNode(c, visit)
	}
}

// PreOrder returns the nodes of the tree in preorder.
func (t *Tree) PreOrder() []*Node {
	out := make([]*Node, 0, t.Size())
	t.Walk(func(n *Node) bool {
		out = append(out, n)
		return true
	})
	return out
}

// PostOrder returns the nodes of the tree in postorder (children left to
// right, then the node).
func (t *Tree) PostOrder() []*Node {
	out := make([]*Node, 0, t.Size())
	if t.IsEmpty() {
		return out
	}
	var rec func(n *Node)
	rec = func(n *Node) {
		for _, c := range n.Children {
			rec(c)
		}
		out = append(out, n)
	}
	rec(t.Root)
	return out
}

// BreadthFirst returns the nodes of the tree level by level, left to right
// within each level.
func (t *Tree) BreadthFirst() []*Node {
	if t.IsEmpty() {
		return nil
	}
	out := make([]*Node, 0, t.Size())
	queue := []*Node{t.Root}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		out = append(out, n)
		queue = append(queue, n.Children...)
	}
	return out
}

// Parents returns a map from every node to its parent. The root maps to nil.
func (t *Tree) Parents() map[*Node]*Node {
	p := make(map[*Node]*Node, t.Size())
	if t.IsEmpty() {
		return p
	}
	p[t.Root] = nil
	t.Walk(func(n *Node) bool {
		for _, c := range n.Children {
			p[c] = n
		}
		return true
	})
	return p
}

// Positions holds the 1-based preorder and postorder position of each node,
// in the node order of PreOrder. Proposition 4.1 of the paper shows that in
// any edit-distance mapping with cost < l, mapped nodes' preorder (and
// postorder) positions differ by at most l; the positional binary branch
// filter is built on these numbers.
type Positions struct {
	Nodes []*Node       // preorder node sequence
	Pre   map[*Node]int // 1-based preorder position
	Post  map[*Node]int // 1-based postorder position
}

// Number computes 1-based preorder and postorder positions for every node.
func (t *Tree) Number() *Positions {
	pos := &Positions{
		Pre:  make(map[*Node]int, t.Size()),
		Post: make(map[*Node]int, t.Size()),
	}
	if t.IsEmpty() {
		return pos
	}
	pre, post := 0, 0
	var rec func(n *Node)
	rec = func(n *Node) {
		pre++
		pos.Pre[n] = pre
		pos.Nodes = append(pos.Nodes, n)
		for _, c := range n.Children {
			rec(c)
		}
		post++
		pos.Post[n] = post
	}
	rec(t.Root)
	return pos
}
