package tree

import (
	"strings"
	"testing"
)

func labelsOf(nodes []*Node) string {
	out := make([]string, len(nodes))
	for i, n := range nodes {
		out[i] = n.Label
	}
	return strings.Join(out, "")
}

func TestPreOrder(t *testing.T) {
	// T1 of the paper: preorder a b c d b c d e (Fig. 2 numbering).
	got := labelsOf(MustParse("a(b(c,d),b(c,d),e)").PreOrder())
	if got != "abcdbcde" {
		t.Errorf("preorder = %q, want %q", got, "abcdbcde")
	}
}

func TestPostOrder(t *testing.T) {
	// T1 of the paper: postorder c d b c d b e a (Fig. 2 numbering).
	got := labelsOf(MustParse("a(b(c,d),b(c,d),e)").PostOrder())
	if got != "cdbcdbea" {
		t.Errorf("postorder = %q, want %q", got, "cdbcdbea")
	}
}

func TestBreadthFirst(t *testing.T) {
	got := labelsOf(MustParse("a(b(d,e),c(f))").BreadthFirst())
	if got != "abcdef" {
		t.Errorf("BFS = %q, want %q", got, "abcdef")
	}
}

func TestWalkPrune(t *testing.T) {
	tr := MustParse("a(b(c,d),e)")
	var visited []string
	tr.Walk(func(n *Node) bool {
		visited = append(visited, n.Label)
		return n.Label != "b" // prune below b
	})
	if got := strings.Join(visited, ""); got != "abe" {
		t.Errorf("pruned walk = %q, want %q", got, "abe")
	}
}

// TestNumberMatchesPaperFigure2 checks the (pre, post) numbering of both
// paper trees against the annotations in Fig. 2.
func TestNumberMatchesPaperFigure2(t *testing.T) {
	type pp struct{ pre, post int }
	check := func(name string, tr *Tree, want []pp) {
		t.Helper()
		pos := tr.Number()
		if len(pos.Nodes) != len(want) {
			t.Fatalf("%s: %d nodes, want %d", name, len(pos.Nodes), len(want))
		}
		for i, n := range pos.Nodes {
			if pos.Pre[n] != want[i].pre || pos.Post[n] != want[i].post {
				t.Errorf("%s: node %d (%q) = (%d,%d), want (%d,%d)",
					name, i, n.Label, pos.Pre[n], pos.Post[n], want[i].pre, want[i].post)
			}
		}
	}
	// Fig. 2, B(T1): a(1,8) b(2,3) c(3,1) d(4,2) b(5,6) c(6,4) d(7,5) e(8,7).
	check("T1", paperT1(), []pp{
		{1, 8}, {2, 3}, {3, 1}, {4, 2}, {5, 6}, {6, 4}, {7, 5}, {8, 7},
	})
	// Fig. 2, B(T2): a(1,9) b(2,5) c(3,1) d(4,2) b(5,4) e(6,3) c(7,6) d(8,7) e(9,8).
	check("T2", paperT2(), []pp{
		{1, 9}, {2, 5}, {3, 1}, {4, 2}, {5, 4}, {6, 3}, {7, 6}, {8, 7}, {9, 8},
	})
}

func TestParents(t *testing.T) {
	tr := MustParse("a(b(c),d)")
	p := tr.Parents()
	if p[tr.Root] != nil {
		t.Error("root should have nil parent")
	}
	b := tr.Root.Children[0]
	c := b.Children[0]
	if p[b] != tr.Root || p[c] != b || p[tr.Root.Children[1]] != tr.Root {
		t.Error("wrong parent assignment")
	}
	if len(p) != 4 {
		t.Errorf("parents map has %d entries, want 4", len(p))
	}
}

func TestEmptyTraversals(t *testing.T) {
	e := New(nil)
	if len(e.PreOrder()) != 0 || len(e.PostOrder()) != 0 || len(e.BreadthFirst()) != 0 {
		t.Error("empty tree traversals should be empty")
	}
	pos := e.Number()
	if len(pos.Nodes) != 0 {
		t.Error("empty tree numbering should be empty")
	}
}
