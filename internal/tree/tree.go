// Package tree implements rooted, ordered, labeled trees — the data model of
// the paper (Section 2). A tree T = (N, E, Root(T), label) has a single root,
// every other node has exactly one parent, and the left-to-right order of
// siblings is significant. Labels are drawn from a finite alphabet Σ.
//
// The package provides construction, traversal, a canonical text codec,
// structural statistics (used by the histogram filters), and the three edit
// operations (relabel, delete, insert) whose minimum-cost sequences define
// the tree edit distance.
package tree

import (
	"fmt"
	"strings"
)

// Node is a node of a rooted, ordered, labeled tree. Children are ordered
// left to right. A Node belongs to at most one tree; sharing nodes between
// trees is not supported.
type Node struct {
	Label    string
	Children []*Node
}

// NewNode returns a node with the given label and children, in order.
func NewNode(label string, children ...*Node) *Node {
	return &Node{Label: label, Children: children}
}

// IsLeaf reports whether the node has no children.
func (n *Node) IsLeaf() bool { return len(n.Children) == 0 }

// Degree returns the number of children (the fanout) of the node.
func (n *Node) Degree() int { return len(n.Children) }

// Tree is a rooted, ordered, labeled tree. The zero value is an empty tree
// with no nodes; all algorithms in this repository treat the empty tree as a
// valid input of size 0.
type Tree struct {
	Root *Node
}

// New returns a tree rooted at root. root may be nil (the empty tree).
func New(root *Node) *Tree { return &Tree{Root: root} }

// IsEmpty reports whether the tree has no nodes.
func (t *Tree) IsEmpty() bool { return t == nil || t.Root == nil }

// Size returns |T|, the number of nodes in the tree.
func (t *Tree) Size() int {
	if t.IsEmpty() {
		return 0
	}
	return subtreeSize(t.Root)
}

func subtreeSize(n *Node) int {
	s := 1
	for _, c := range n.Children {
		s += subtreeSize(c)
	}
	return s
}

// Height returns the number of nodes on the longest root-to-leaf path.
// The empty tree has height 0; a single node has height 1.
func (t *Tree) Height() int {
	if t.IsEmpty() {
		return 0
	}
	return nodeHeight(t.Root)
}

// nodeHeight returns the height (in nodes) of the subtree rooted at n.
func nodeHeight(n *Node) int {
	h := 0
	for _, c := range n.Children {
		if ch := nodeHeight(c); ch > h {
			h = ch
		}
	}
	return h + 1
}

// Leaves returns the number of leaf nodes in the tree.
func (t *Tree) Leaves() int {
	if t.IsEmpty() {
		return 0
	}
	n := 0
	t.Walk(func(nd *Node) bool {
		if nd.IsLeaf() {
			n++
		}
		return true
	})
	return n
}

// Clone returns a deep copy of the tree. Mutating the copy never affects
// the original.
func (t *Tree) Clone() *Tree {
	if t.IsEmpty() {
		return New(nil)
	}
	return New(cloneNode(t.Root))
}

func cloneNode(n *Node) *Node {
	c := &Node{Label: n.Label}
	if len(n.Children) > 0 {
		c.Children = make([]*Node, len(n.Children))
		for i, ch := range n.Children {
			c.Children[i] = cloneNode(ch)
		}
	}
	return c
}

// Equal reports whether two trees are structurally identical: same shape
// and the same label at every corresponding position.
func Equal(a, b *Tree) bool {
	switch {
	case a.IsEmpty() && b.IsEmpty():
		return true
	case a.IsEmpty() || b.IsEmpty():
		return false
	}
	return nodesEqual(a.Root, b.Root)
}

func nodesEqual(a, b *Node) bool {
	if a.Label != b.Label || len(a.Children) != len(b.Children) {
		return false
	}
	for i := range a.Children {
		if !nodesEqual(a.Children[i], b.Children[i]) {
			return false
		}
	}
	return true
}

// Validate checks the structural invariants of the tree: no nil nodes and no
// node reachable through two different paths (which would make the structure
// a DAG or introduce a cycle). It returns a descriptive error on the first
// violation found.
func (t *Tree) Validate() error {
	if t.IsEmpty() {
		return nil
	}
	seen := make(map[*Node]bool)
	var walk func(n *Node, path string) error
	walk = func(n *Node, path string) error {
		if n == nil {
			return fmt.Errorf("tree: nil node at %s", path)
		}
		if seen[n] {
			return fmt.Errorf("tree: node %q at %s is reachable twice", n.Label, path)
		}
		seen[n] = true
		for i, c := range n.Children {
			if err := walk(c, fmt.Sprintf("%s.%d", path, i)); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(t.Root, "root")
}

// String renders the tree in the canonical text format understood by Parse,
// e.g. "a(b(c,d),e)". See Format for the grammar.
func (t *Tree) String() string {
	if t.IsEmpty() {
		return ""
	}
	var sb strings.Builder
	formatNode(&sb, t.Root)
	return sb.String()
}
