package tree

import "testing"

// paperT1 and paperT2 are the example trees of Fig. 1 of the paper,
// reconstructed from the node numbering of Fig. 2:
// T1 = a(b(c,d), b(c,d), e), T2 = a(b(c,d,b(e)), c, d, e).
func paperT1() *Tree { return MustParse("a(b(c,d),b(c,d),e)") }
func paperT2() *Tree { return MustParse("a(b(c,d,b(e)),c,d,e)") }

func TestSize(t *testing.T) {
	cases := []struct {
		in   string
		want int
	}{
		{"", 0},
		{"a", 1},
		{"a(b)", 2},
		{"a(b,c)", 3},
		{"a(b(c,d),b(c,d),e)", 8},
		{"a(b(c,d,b(e)),c,d,e)", 9},
	}
	for _, c := range cases {
		if got := MustParse(c.in).Size(); got != c.want {
			t.Errorf("Size(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestHeight(t *testing.T) {
	cases := []struct {
		in   string
		want int
	}{
		{"", 0},
		{"a", 1},
		{"a(b)", 2},
		{"a(b,c)", 2},
		{"a(b(c(d)))", 4},
		{"a(b(c,d),b(c,d),e)", 3},
	}
	for _, c := range cases {
		if got := MustParse(c.in).Height(); got != c.want {
			t.Errorf("Height(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestLeaves(t *testing.T) {
	cases := []struct {
		in   string
		want int
	}{
		{"", 0},
		{"a", 1},
		{"a(b,c)", 2},
		{"a(b(c,d),b(c,d),e)", 5},
	}
	for _, c := range cases {
		if got := MustParse(c.in).Leaves(); got != c.want {
			t.Errorf("Leaves(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestEqual(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"", "", true},
		{"", "a", false},
		{"a", "a", true},
		{"a", "b", false},
		{"a(b,c)", "a(b,c)", true},
		{"a(b,c)", "a(c,b)", false}, // sibling order matters
		{"a(b(c))", "a(b,c)", false},
	}
	for _, c := range cases {
		if got := Equal(MustParse(c.a), MustParse(c.b)); got != c.want {
			t.Errorf("Equal(%q,%q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	orig := paperT1()
	cp := orig.Clone()
	if !Equal(orig, cp) {
		t.Fatalf("clone differs: %v vs %v", orig, cp)
	}
	cp.Root.Children[0].Label = "changed"
	cp.Root.Children = cp.Root.Children[:1]
	if !Equal(orig, paperT1()) {
		t.Fatal("mutating the clone changed the original")
	}
}

func TestValidate(t *testing.T) {
	if err := paperT1().Validate(); err != nil {
		t.Errorf("valid tree reported invalid: %v", err)
	}
	if err := New(nil).Validate(); err != nil {
		t.Errorf("empty tree reported invalid: %v", err)
	}

	shared := NewNode("x")
	dag := New(NewNode("r", shared, shared))
	if err := dag.Validate(); err == nil {
		t.Error("shared node not detected")
	}

	withNil := New(&Node{Label: "r", Children: []*Node{nil}})
	if err := withNil.Validate(); err == nil {
		t.Error("nil child not detected")
	}
}

func TestNodeHelpers(t *testing.T) {
	n := NewNode("a", NewNode("b"), NewNode("c"))
	if n.IsLeaf() {
		t.Error("node with children reported as leaf")
	}
	if !n.Children[0].IsLeaf() {
		t.Error("leaf not reported as leaf")
	}
	if n.Degree() != 2 {
		t.Errorf("Degree = %d, want 2", n.Degree())
	}
}

func TestEmptyTreeAccessors(t *testing.T) {
	var e *Tree
	if !e.IsEmpty() || e.Size() != 0 || e.Height() != 0 || e.Leaves() != 0 {
		t.Error("nil *Tree should behave as the empty tree")
	}
	z := New(nil)
	if !z.IsEmpty() || z.Size() != 0 {
		t.Error("New(nil) should be the empty tree")
	}
	if got := z.Clone(); !got.IsEmpty() {
		t.Error("clone of empty tree should be empty")
	}
}
