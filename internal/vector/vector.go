// Package vector implements sparse non-negative integer vectors with the L1
// (Manhattan) norm. The binary branch vectors of Definition 3 live in a
// space whose dimensionality |Γ| is the number of distinct binary branches
// in the whole dataset, but each individual tree touches at most |T|
// dimensions, so vectors are stored sparsely as sorted (dimension, count)
// pairs and distances are computed by list merging in O(nnz1 + nnz2).
package vector

import (
	"fmt"
	"sort"
	"strings"
)

// Dim identifies a dimension of the vector space (an interned binary
// branch).
type Dim uint32

// Elem is one non-zero coordinate of a sparse vector.
type Elem struct {
	Dim   Dim
	Count int
}

// Sparse is a sparse vector: the non-zero coordinates sorted by dimension.
// A Sparse is immutable after construction; Builder accumulates counts.
type Sparse struct {
	elems []Elem
}

// FromElems constructs a vector from (dimension, count) pairs. Pairs with
// equal dimension are summed; pairs with zero resulting count are dropped;
// negative resulting counts are rejected.
func FromElems(elems []Elem) (*Sparse, error) {
	b := NewBuilder()
	for _, e := range elems {
		b.Add(e.Dim, e.Count)
	}
	return b.Vector()
}

// FromSorted constructs a vector directly from coordinates that are
// already in strictly ascending dimension order with positive counts,
// without re-sorting. It rejects out-of-order, duplicate, and non-positive
// entries. The slice is retained; callers must not modify it afterwards.
func FromSorted(elems []Elem) (*Sparse, error) {
	for i, e := range elems {
		if e.Count <= 0 {
			return nil, fmt.Errorf("vector: non-positive count %d at dimension %d", e.Count, e.Dim)
		}
		if i > 0 && elems[i-1].Dim >= e.Dim {
			return nil, fmt.Errorf("vector: dimensions not strictly ascending at index %d", i)
		}
	}
	return &Sparse{elems: elems}, nil
}

// FromMap constructs a vector from a dimension→count map.
func FromMap(m map[Dim]int) (*Sparse, error) {
	b := NewBuilder()
	for d, c := range m {
		b.Add(d, c)
	}
	return b.Vector()
}

// Builder accumulates counts per dimension and produces a Sparse.
type Builder struct {
	counts map[Dim]int
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder { return &Builder{counts: make(map[Dim]int)} }

// Add increments dimension d by delta (which may be negative during
// accumulation, as long as the final count is non-negative).
func (b *Builder) Add(d Dim, delta int) { b.counts[d] += delta }

// Inc increments dimension d by one.
func (b *Builder) Inc(d Dim) { b.counts[d]++ }

// Vector finalizes the builder into an immutable Sparse. It fails if any
// accumulated count is negative.
func (b *Builder) Vector() (*Sparse, error) {
	elems := make([]Elem, 0, len(b.counts))
	for d, c := range b.counts {
		switch {
		case c < 0:
			return nil, fmt.Errorf("vector: dimension %d has negative count %d", d, c)
		case c > 0:
			elems = append(elems, Elem{Dim: d, Count: c})
		}
	}
	sort.Slice(elems, func(i, j int) bool { return elems[i].Dim < elems[j].Dim })
	return &Sparse{elems: elems}, nil
}

// MustVector is Vector that panics on error; for use when all deltas are
// known non-negative.
func (b *Builder) MustVector() *Sparse {
	v, err := b.Vector()
	if err != nil {
		panic(err)
	}
	return v
}

// Zero is the empty (all-zero) vector.
func Zero() *Sparse { return &Sparse{} }

// Get returns the count at dimension d (zero if absent).
func (v *Sparse) Get(d Dim) int {
	i := sort.Search(len(v.elems), func(i int) bool { return v.elems[i].Dim >= d })
	if i < len(v.elems) && v.elems[i].Dim == d {
		return v.elems[i].Count
	}
	return 0
}

// NonZero returns the number of non-zero coordinates.
func (v *Sparse) NonZero() int { return len(v.elems) }

// Sum returns the sum of all counts — for a binary branch vector this is
// the number of nodes |T| of the underlying tree.
func (v *Sparse) Sum() int {
	s := 0
	for _, e := range v.elems {
		s += e.Count
	}
	return s
}

// Elems returns the non-zero coordinates in ascending dimension order. The
// returned slice is shared; callers must not modify it.
func (v *Sparse) Elems() []Elem { return v.elems }

// Range calls fn for every non-zero coordinate in ascending dimension
// order.
func (v *Sparse) Range(fn func(Dim, int)) {
	for _, e := range v.elems {
		fn(e.Dim, e.Count)
	}
}

// L1 returns the L1 (Manhattan) distance between a and b, computed by
// merging the two sorted coordinate lists in O(nnz(a)+nnz(b)).
func L1(a, b *Sparse) int {
	dist := 0
	i, j := 0, 0
	for i < len(a.elems) && j < len(b.elems) {
		ea, eb := a.elems[i], b.elems[j]
		switch {
		case ea.Dim < eb.Dim:
			dist += ea.Count
			i++
		case ea.Dim > eb.Dim:
			dist += eb.Count
			j++
		default:
			dist += abs(ea.Count - eb.Count)
			i++
			j++
		}
	}
	for ; i < len(a.elems); i++ {
		dist += a.elems[i].Count
	}
	for ; j < len(b.elems); j++ {
		dist += b.elems[j].Count
	}
	return dist
}

// Overlap returns the size of the multiset intersection of a and b, i.e.
// Σ_d min(a[d], b[d]). Note L1(a,b) = Sum(a)+Sum(b)-2·Overlap(a,b).
func Overlap(a, b *Sparse) int {
	ov := 0
	i, j := 0, 0
	for i < len(a.elems) && j < len(b.elems) {
		ea, eb := a.elems[i], b.elems[j]
		switch {
		case ea.Dim < eb.Dim:
			i++
		case ea.Dim > eb.Dim:
			j++
		default:
			ov += min(ea.Count, eb.Count)
			i++
			j++
		}
	}
	return ov
}

// Equal reports whether a and b have identical coordinates.
func Equal(a, b *Sparse) bool {
	if len(a.elems) != len(b.elems) {
		return false
	}
	for i := range a.elems {
		if a.elems[i] != b.elems[i] {
			return false
		}
	}
	return true
}

// String renders the vector as "{dim:count, ...}" for debugging.
func (v *Sparse) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	for i, e := range v.elems {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%d:%d", e.Dim, e.Count)
	}
	sb.WriteByte('}')
	return sb.String()
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
