package vector

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustVec(t *testing.T, m map[Dim]int) *Sparse {
	t.Helper()
	v, err := FromMap(m)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestFromMapDropsZeros(t *testing.T) {
	v := mustVec(t, map[Dim]int{1: 2, 2: 0, 5: 1})
	if v.NonZero() != 2 {
		t.Errorf("NonZero = %d, want 2", v.NonZero())
	}
	if v.Get(2) != 0 || v.Get(1) != 2 || v.Get(5) != 1 || v.Get(99) != 0 {
		t.Error("Get returned wrong counts")
	}
}

func TestBuilderRejectsNegative(t *testing.T) {
	b := NewBuilder()
	b.Add(3, 2)
	b.Add(3, -5)
	if _, err := b.Vector(); err == nil {
		t.Error("negative count accepted")
	}
}

func TestBuilderAccumulates(t *testing.T) {
	b := NewBuilder()
	b.Inc(7)
	b.Inc(7)
	b.Add(7, 3)
	b.Add(1, 1)
	v := b.MustVector()
	if v.Get(7) != 5 || v.Get(1) != 1 || v.Sum() != 6 {
		t.Errorf("bad accumulation: %v", v)
	}
}

func TestFromSorted(t *testing.T) {
	v, err := FromSorted([]Elem{{1, 2}, {4, 1}})
	if err != nil || v.Get(1) != 2 || v.Get(4) != 1 {
		t.Errorf("FromSorted failed: %v %v", v, err)
	}
	if _, err := FromSorted([]Elem{{4, 1}, {1, 2}}); err == nil {
		t.Error("out-of-order accepted")
	}
	if _, err := FromSorted([]Elem{{1, 1}, {1, 2}}); err == nil {
		t.Error("duplicate dim accepted")
	}
	if _, err := FromSorted([]Elem{{1, 0}}); err == nil {
		t.Error("zero count accepted")
	}
}

func TestL1Known(t *testing.T) {
	a := mustVec(t, map[Dim]int{1: 1, 2: 1, 4: 1, 6: 2, 9: 2, 10: 1})
	b := mustVec(t, map[Dim]int{1: 1, 3: 1, 5: 1, 6: 2, 7: 1, 8: 1, 10: 2})
	// The Fig. 3 vectors: distance 9.
	if got := L1(a, b); got != 9 {
		t.Errorf("L1 = %d, want 9", got)
	}
	if L1(a, a) != 0 || L1(b, b) != 0 {
		t.Error("self distance non-zero")
	}
	if L1(a, Zero()) != a.Sum() {
		t.Error("distance to zero should be Sum")
	}
}

func TestOverlapIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func(seedA, seedB int64) bool {
		a := randomVec(rand.New(rand.NewSource(seedA)))
		b := randomVec(rand.New(rand.NewSource(seedB)))
		// L1 = Sum(a)+Sum(b)−2·Overlap
		return L1(a, b) == a.Sum()+b.Sum()-2*Overlap(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func randomVec(rng *rand.Rand) *Sparse {
	b := NewBuilder()
	n := rng.Intn(20)
	for i := 0; i < n; i++ {
		b.Add(Dim(rng.Intn(15)), 1+rng.Intn(3))
	}
	return b.MustVector()
}

func TestL1TriangleQuick(t *testing.T) {
	f := func(sa, sb, sc int64) bool {
		a := randomVec(rand.New(rand.NewSource(sa)))
		b := randomVec(rand.New(rand.NewSource(sb)))
		c := randomVec(rand.New(rand.NewSource(sc)))
		return L1(a, c) <= L1(a, b)+L1(b, c) && L1(a, b) == L1(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestEqual(t *testing.T) {
	a := mustVec(t, map[Dim]int{1: 1, 2: 3})
	b := mustVec(t, map[Dim]int{1: 1, 2: 3})
	c := mustVec(t, map[Dim]int{1: 1, 2: 4})
	d := mustVec(t, map[Dim]int{1: 1})
	if !Equal(a, b) || Equal(a, c) || Equal(a, d) {
		t.Error("Equal misbehaves")
	}
}

func TestRangeAscending(t *testing.T) {
	v := mustVec(t, map[Dim]int{9: 1, 1: 2, 5: 3})
	var dims []Dim
	v.Range(func(d Dim, c int) { dims = append(dims, d) })
	if len(dims) != 3 || dims[0] != 1 || dims[1] != 5 || dims[2] != 9 {
		t.Errorf("Range order: %v", dims)
	}
}

func TestString(t *testing.T) {
	v := mustVec(t, map[Dim]int{2: 1})
	if got := v.String(); got != "{2:1}" {
		t.Errorf("String = %q", got)
	}
	if got := Zero().String(); got != "{}" {
		t.Errorf("Zero String = %q", got)
	}
}

func TestElemsOrderedAndShared(t *testing.T) {
	v := mustVec(t, map[Dim]int{5: 2, 1: 1})
	es := v.Elems()
	if len(es) != 2 || es[0].Dim != 1 || es[1].Dim != 5 {
		t.Errorf("Elems = %v", es)
	}
}

func TestFromElemsMerges(t *testing.T) {
	v, err := FromElems([]Elem{{1, 1}, {1, 2}, {3, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if v.Get(1) != 3 || v.Get(3) != 1 {
		t.Errorf("merge failed: %v", v)
	}
}
