// Package vptree implements a vantage-point tree over an arbitrary
// pseudometric. The binary branch distance satisfies the triangle
// inequality (Section 3.2 of the paper), so a VP-tree built in BDist space
// can answer "all trees with BDist ≤ r from the query" without comparing
// the query against every vector — and since EDist ≤ τ implies
// BDist ≤ Factor(q)·τ, a BDist ball of radius Factor(q)·τ is a sound
// candidate set for an edit-distance range query. This pushes the filter
// step itself below linear for selective queries, the direction the
// paper's conclusion gestures at ("CPU and I/O efficient solutions").
//
// The tree stores item identifiers only; distances are supplied as
// callbacks, so any pseudometric space plugs in.
package vptree

import (
	"math/rand"
	"sort"
)

// bucketSize is the leaf capacity; below this size recursion stops and
// items are scanned linearly.
const bucketSize = 12

// Tree is an immutable vantage-point tree over item identifiers.
type Tree struct {
	nodes []node
	root  int32
}

type node struct {
	vp              int32 // vantage point item
	mu              int32 // median distance: inside iff d(vp, x) <= mu
	inside, outside int32 // child node indexes (-1 = none)
	bucket          []int32
	leaf            bool
}

// Build constructs a VP-tree over the given items. dist must be a
// pseudometric (symmetric, triangle inequality); seed makes vantage-point
// sampling deterministic.
func Build(items []int, dist func(a, b int) int, seed int64) *Tree {
	t := &Tree{}
	ids := make([]int32, len(items))
	for i, v := range items {
		ids[i] = int32(v)
	}
	rng := rand.New(rand.NewSource(seed))
	t.root = t.build(ids, dist, rng)
	return t
}

func (t *Tree) build(ids []int32, dist func(a, b int) int, rng *rand.Rand) int32 {
	if len(ids) == 0 {
		return -1
	}
	if len(ids) <= bucketSize {
		t.nodes = append(t.nodes, node{leaf: true, bucket: ids, inside: -1, outside: -1})
		return int32(len(t.nodes) - 1)
	}
	// Pick a random vantage point and split the rest at the median
	// distance.
	vi := rng.Intn(len(ids))
	ids[0], ids[vi] = ids[vi], ids[0]
	vp := ids[0]
	rest := ids[1:]

	type distItem struct {
		id int32
		d  int
	}
	di := make([]distItem, len(rest))
	for i, id := range rest {
		di[i] = distItem{id: id, d: dist(int(vp), int(id))}
	}
	sort.Slice(di, func(x, y int) bool { return di[x].d < di[y].d })
	mid := len(di) / 2
	mu := di[mid].d
	// Put everything with d <= mu inside; in degenerate (all-equal)
	// splits fall back to a leaf to guarantee termination.
	split := sort.Search(len(di), func(i int) bool { return di[i].d > mu })
	if split == 0 || split == len(di) {
		all := make([]int32, 0, len(ids))
		all = append(all, vp)
		for _, e := range di {
			all = append(all, e.id)
		}
		t.nodes = append(t.nodes, node{leaf: true, bucket: all, inside: -1, outside: -1})
		return int32(len(t.nodes) - 1)
	}
	inside := make([]int32, 0, split)
	outside := make([]int32, 0, len(di)-split)
	for _, e := range di[:split] {
		inside = append(inside, e.id)
	}
	for _, e := range di[split:] {
		outside = append(outside, e.id)
	}

	idx := int32(len(t.nodes))
	t.nodes = append(t.nodes, node{vp: vp, mu: int32(mu), inside: -1, outside: -1})
	in := t.build(inside, dist, rng)
	out := t.build(outside, dist, rng)
	t.nodes[idx].inside = in
	t.nodes[idx].outside = out
	return idx
}

// Range visits every item whose distance to the query is ≤ radius.
// distToQuery returns the distance between the query and an item; it is
// called once per touched item (vantage points and bucket members on the
// search path), which for selective radii is far fewer than the
// collection size.
func (t *Tree) Range(distToQuery func(id int) int, radius int, visit func(id int)) {
	if radius < 0 {
		return
	}
	var rec func(ni int32)
	rec = func(ni int32) {
		if ni < 0 {
			return
		}
		n := &t.nodes[ni]
		if n.leaf {
			for _, id := range n.bucket {
				if distToQuery(int(id)) <= radius {
					visit(int(id))
				}
			}
			return
		}
		d := distToQuery(int(n.vp))
		if d <= radius {
			visit(int(n.vp))
		}
		// Triangle inequality pruning: the inside region holds items
		// with d(vp,x) ≤ mu, so it can contain a result only if
		// d(vp,q) − radius ≤ mu; the outside region only if
		// d(vp,q) + radius > mu.
		if d-radius <= int(n.mu) {
			rec(n.inside)
		}
		if d+radius > int(n.mu) {
			rec(n.outside)
		}
	}
	rec(t.root)
}

// Size returns the number of stored items.
func (t *Tree) Size() int {
	total := 0
	for i := range t.nodes {
		if t.nodes[i].leaf {
			total += len(t.nodes[i].bucket)
		} else {
			total++
		}
	}
	return total
}

// Depth returns the maximum node depth (1 for a single leaf).
func (t *Tree) Depth() int {
	var rec func(ni int32) int
	rec = func(ni int32) int {
		if ni < 0 {
			return 0
		}
		n := &t.nodes[ni]
		if n.leaf {
			return 1
		}
		l, r := rec(n.inside), rec(n.outside)
		if r > l {
			l = r
		}
		return l + 1
	}
	return rec(t.root)
}
