package vptree

import (
	"math/rand"
	"sort"
	"testing"
)

// lineMetric places items on the integer line; distance is |a−b| over the
// item values.
type lineMetric []int

func (m lineMetric) dist(a, b int) int {
	d := m[a] - m[b]
	if d < 0 {
		d = -d
	}
	return d
}

func buildLine(n int, seed int64) (lineMetric, *Tree) {
	rng := rand.New(rand.NewSource(seed))
	vals := make(lineMetric, n)
	ids := make([]int, n)
	for i := range vals {
		vals[i] = rng.Intn(1000)
		ids[i] = i
	}
	return vals, Build(ids, vals.dist, seed)
}

func linearRange(m lineMetric, q, r int) []int {
	var out []int
	for i, v := range m {
		d := v - q
		if d < 0 {
			d = -d
		}
		if d <= r {
			out = append(out, i)
		}
	}
	return out
}

func TestRangeMatchesLinearScan(t *testing.T) {
	m, tr := buildLine(500, 1)
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		q := rng.Intn(1000)
		r := rng.Intn(100)
		var got []int
		tr.Range(func(id int) int {
			d := m[id] - q
			if d < 0 {
				d = -d
			}
			return d
		}, r, func(id int) { got = append(got, id) })
		sort.Ints(got)
		want := linearRange(m, q, r)
		if len(got) != len(want) {
			t.Fatalf("q=%d r=%d: got %d items, want %d", q, r, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("q=%d r=%d: item mismatch at %d", q, r, i)
			}
		}
	}
}

func TestRangeTouchesFewItems(t *testing.T) {
	m, tr := buildLine(2000, 3)
	touched := 0
	tr.Range(func(id int) int {
		touched++
		d := m[id] - 500
		if d < 0 {
			d = -d
		}
		return d
	}, 5, func(int) {})
	if touched >= 2000/2 {
		t.Errorf("selective range touched %d of 2000 items — no pruning", touched)
	}
}

func TestSizeAndDepth(t *testing.T) {
	_, tr := buildLine(300, 4)
	if tr.Size() != 300 {
		t.Errorf("Size = %d, want 300", tr.Size())
	}
	if d := tr.Depth(); d < 2 || d > 60 {
		t.Errorf("Depth = %d implausible", d)
	}
}

func TestDegenerateAllEqual(t *testing.T) {
	// Every pairwise distance is 0: build must terminate (single leaf)
	// and range must return everything for r ≥ 0.
	n := 100
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	tr := Build(ids, func(a, b int) int { return 0 }, 5)
	found := 0
	tr.Range(func(int) int { return 0 }, 0, func(int) { found++ })
	if found != n {
		t.Errorf("found %d of %d identical items", found, n)
	}
}

func TestEmptyAndTiny(t *testing.T) {
	tr := Build(nil, func(a, b int) int { return 0 }, 6)
	tr.Range(func(int) int { return 0 }, 10, func(int) {
		t.Error("empty tree visited an item")
	})
	one := Build([]int{7}, func(a, b int) int { return 0 }, 7)
	got := -1
	one.Range(func(int) int { return 0 }, 0, func(id int) { got = id })
	if got != 7 {
		t.Errorf("singleton range returned %d", got)
	}
}

func TestNegativeRadius(t *testing.T) {
	_, tr := buildLine(50, 8)
	tr.Range(func(int) int { return 0 }, -1, func(int) {
		t.Error("negative radius visited an item")
	})
}

// TestPseudometricWithTies: many duplicate coordinates exercise the
// degenerate-split fallback inside a larger tree.
func TestPseudometricWithTies(t *testing.T) {
	vals := make(lineMetric, 400)
	ids := make([]int, 400)
	for i := range vals {
		vals[i] = (i % 5) * 10 // only 5 distinct positions
		ids[i] = i
	}
	tr := Build(ids, vals.dist, 9)
	if tr.Size() != 400 {
		t.Fatalf("Size = %d", tr.Size())
	}
	var got []int
	tr.Range(func(id int) int {
		d := vals[id] - 20
		if d < 0 {
			d = -d
		}
		return d
	}, 0, func(id int) { got = append(got, id) })
	if len(got) != 80 { // ids with value 20
		t.Errorf("found %d items at distance 0, want 80", len(got))
	}
}
