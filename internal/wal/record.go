package wal

import (
	"encoding/binary"
	"fmt"
)

// Typed record payloads. The log framing (wal.go) carries opaque bytes;
// this file defines what the server puts inside them.
//
// The original format had exactly one record kind — an insert: u32
// little-endian dataset id followed by the tree's canonical text. Newer
// kinds are carried behind an escape: a record whose first four bytes are
// 0xFFFFFFFF (an id no real dataset reaches — ids are capped far below
// it) is an extended record, and its fifth byte names the type. Old logs
// therefore decode unchanged as inserts, and old readers fail loudly
// (implausible id) rather than misread new records as trees.
//
//	insert:    u32 id | canonical tree text
//	extended:  u32 0xFFFFFFFF | u8 type | payload
//	tombstone: u32 0xFFFFFFFF | u8 1    | u32 id

// RecordType discriminates decoded records.
type RecordType uint8

const (
	// RecordInsert is a tree insert (the only pre-extension kind).
	RecordInsert RecordType = 0
	// RecordTombstone marks a dataset id as deleted.
	RecordTombstone RecordType = 1
	// RecordProbe is a durability probe: a no-op record the degraded
	// server appends to test whether the disk has healed. Replay skips it.
	RecordProbe RecordType = 2
)

// extendedMark is the impossible-id escape introducing an extended record.
const extendedMark = 0xFFFFFFFF

// Record is one decoded WAL payload.
type Record struct {
	Type RecordType
	// ID is the dataset id the record concerns.
	ID int
	// Tree is the canonical text of an inserted tree (inserts only).
	Tree string
}

// EncodeInsert builds an insert payload — byte-identical to the original
// single-kind format.
func EncodeInsert(id int, text string) []byte {
	buf := make([]byte, 4+len(text))
	binary.LittleEndian.PutUint32(buf[:4], uint32(id))
	copy(buf[4:], text)
	return buf
}

// EncodeTombstone builds a tombstone payload for a deleted id.
func EncodeTombstone(id int) []byte {
	buf := make([]byte, 4+1+4)
	binary.LittleEndian.PutUint32(buf[:4], extendedMark)
	buf[4] = byte(RecordTombstone)
	binary.LittleEndian.PutUint32(buf[5:], uint32(id))
	return buf
}

// EncodeProbe builds a probe payload. It carries no data: its only job
// is to exercise the append + fsync path when the server is checking
// whether a degraded disk has recovered.
func EncodeProbe() []byte {
	buf := make([]byte, 4+1)
	binary.LittleEndian.PutUint32(buf[:4], extendedMark)
	buf[4] = byte(RecordProbe)
	return buf
}

// DecodeRecord parses one payload, accepting both the original insert
// format and extended records. Unknown extended types are an error: a log
// from a future version must stop recovery, not silently drop writes.
func DecodeRecord(p []byte) (Record, error) {
	if len(p) < 4 {
		return Record{}, fmt.Errorf("wal: record of %d bytes", len(p))
	}
	head := binary.LittleEndian.Uint32(p[:4])
	if head != extendedMark {
		return Record{Type: RecordInsert, ID: int(head), Tree: string(p[4:])}, nil
	}
	if len(p) < 5 {
		return Record{}, fmt.Errorf("wal: extended record missing type byte")
	}
	switch t := RecordType(p[4]); t {
	case RecordTombstone:
		if len(p) != 9 {
			return Record{}, fmt.Errorf("wal: tombstone record of %d bytes, want 9", len(p))
		}
		return Record{Type: RecordTombstone, ID: int(binary.LittleEndian.Uint32(p[5:]))}, nil
	case RecordProbe:
		if len(p) != 5 {
			return Record{}, fmt.Errorf("wal: probe record of %d bytes, want 5", len(p))
		}
		return Record{Type: RecordProbe}, nil
	default:
		return Record{}, fmt.Errorf("wal: unknown record type %d", t)
	}
}
