package wal

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// TestRecordInsertRoundTrip: insert payloads decode back, and stay
// byte-identical to the original single-kind format (u32 id + text) so
// logs written before typed records replay unchanged.
func TestRecordInsertRoundTrip(t *testing.T) {
	p := EncodeInsert(42, "a(b(c),d)")
	legacy := make([]byte, 4+len("a(b(c),d)"))
	binary.LittleEndian.PutUint32(legacy[:4], 42)
	copy(legacy[4:], "a(b(c),d)")
	if !bytes.Equal(p, legacy) {
		t.Fatalf("EncodeInsert not byte-compatible with the legacy format:\n got %x\nwant %x", p, legacy)
	}
	rec, err := DecodeRecord(p)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Type != RecordInsert || rec.ID != 42 || rec.Tree != "a(b(c),d)" {
		t.Fatalf("decoded %+v", rec)
	}
}

// TestRecordTombstoneRoundTrip covers the extended tombstone kind.
func TestRecordTombstoneRoundTrip(t *testing.T) {
	rec, err := DecodeRecord(EncodeTombstone(7))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Type != RecordTombstone || rec.ID != 7 || rec.Tree != "" {
		t.Fatalf("decoded %+v", rec)
	}
}

// TestRecordProbeRoundTrip covers the durability-probe kind: no data,
// decodes cleanly so replay can skip it.
func TestRecordProbeRoundTrip(t *testing.T) {
	rec, err := DecodeRecord(EncodeProbe())
	if err != nil {
		t.Fatal(err)
	}
	if rec.Type != RecordProbe || rec.ID != 0 || rec.Tree != "" {
		t.Fatalf("decoded %+v", rec)
	}
}

// TestRecordDecodeErrors: malformed payloads fail loudly instead of being
// misread as inserts.
func TestRecordDecodeErrors(t *testing.T) {
	cases := map[string][]byte{
		"too short":           {1, 2},
		"escape without type": {0xFF, 0xFF, 0xFF, 0xFF},
		"unknown type":        {0xFF, 0xFF, 0xFF, 0xFF, 99, 0, 0, 0, 0},
		"short tombstone":     {0xFF, 0xFF, 0xFF, 0xFF, 1, 7},
		"long tombstone":      append(EncodeTombstone(7), 0),
		"long probe":          append(EncodeProbe(), 0),
	}
	for name, p := range cases {
		if _, err := DecodeRecord(p); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}
