// Package wal is an append-only write-ahead log: the durability floor
// under the treesimd server's live inserts. An insert is acknowledged
// only after its record is appended here (and, under the default policy,
// fsynced), so a crash at any point loses nothing that was acknowledged —
// recovery is snapshot-load followed by replay of this log.
//
// On-disk layout:
//
//	magic "TSWL1\x00"
//	records, each: u32 payload length | u32 CRC32C(payload) | payload
//
// All integers are little-endian; the checksum is CRC32-Castagnoli. The
// format is designed for crash recovery rather than error correction:
// Replay delivers records in order and stops cleanly at the first torn or
// corrupt record (a partial header, a partial payload, an implausible
// length, or a checksum mismatch), treating everything before it as the
// durable prefix. Open discards such a tail before appending, so a log
// that survived a crash mid-append keeps accepting records.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"treesim/internal/faultfs"
	"treesim/internal/obs"
)

// MaxRecord caps one record's payload, mirroring the codec's tree cap: a
// length prefix beyond it is treated as corruption, never as an
// allocation request.
const MaxRecord = 1 << 26

var magic = [6]byte{'T', 'S', 'W', 'L', '1', 0}

const headerLen = int64(len(magic))

// recordHeader is u32 length + u32 CRC32C.
const recordHeader = 8

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// SyncPolicy selects when appends reach stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append: an acknowledged record
	// survives power loss. The default.
	SyncAlways SyncPolicy = iota
	// SyncNever leaves flushing to the OS: records survive a process
	// crash but a power cut may lose the recently appended tail.
	SyncNever
)

// ParseSyncPolicy maps the flag spellings "always" and "never" (also
// "none") to a policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "never", "none":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("wal: unknown sync policy %q (want always or never)", s)
}

// Options tunes Open; the zero value is SyncAlways on the real
// filesystem.
type Options struct {
	Sync SyncPolicy
	// FS is the filesystem to write through; nil means the real one.
	// Tests inject faults here (see internal/faultfs).
	FS faultfs.FS
	// AppendHist, when non-nil, records the wall time of each successful
	// Append (write plus any policy fsync) in seconds — the latency an
	// insert pays for durability before it can be acknowledged.
	AppendHist *obs.Histogram
	// FsyncHist, when non-nil, records the wall time of each fsync issued
	// by the log (per-record under SyncAlways, plus explicit Sync calls).
	FsyncHist *obs.Histogram
}

func (o Options) fs() faultfs.FS {
	if o.FS == nil {
		return faultfs.OS
	}
	return o.FS
}

// ErrTooLarge rejects appends beyond MaxRecord.
var ErrTooLarge = errors.New("wal: record exceeds MaxRecord")

// Log is an open write-ahead log. Methods are safe for concurrent use.
type Log struct {
	mu   sync.Mutex
	fs   faultfs.FS
	f    faultfs.File
	path string
	opts Options
	off  int64 // end of the valid record prefix == append position
	recs int   // valid records on disk (preexisting + appended)
	// broken is set when a failed append could not be rolled back: the
	// file may end in a torn record that later appends must not follow
	// (replay would never reach them).
	broken error
}

// Open opens (creating if absent) the log at path for appending. A torn
// or corrupt tail left by a crash is truncated away first, so the
// returned log appends after the last valid record. Replay the log before
// opening it for append when recovering state.
func Open(path string, opts Options) (*Log, error) {
	fsys := opts.fs()
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open: %w", err)
	}
	l := &Log{fs: fsys, f: f, path: path, opts: opts}

	res, err := scan(f, nil)
	if err != nil {
		f.Close()
		return nil, err
	}
	if res.fresh {
		// New/empty file: write the header.
		if _, err := f.Write(magic[:]); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: writing header: %w", err)
		}
		if err := l.maybeSync(); err != nil {
			f.Close()
			return nil, err
		}
		l.off = headerLen
		return l, nil
	}
	if res.Torn {
		// Drop the unreachable tail so new appends stay replayable.
		if err := f.Truncate(res.ValidBytes); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: truncating torn tail: %w", err)
		}
	}
	if _, err := f.Seek(res.ValidBytes, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: seeking to append position: %w", err)
	}
	l.off = res.ValidBytes
	l.recs = res.Records
	return l, nil
}

// Append adds one record and, under SyncAlways, fsyncs it. When Append
// returns nil the record will be delivered by every future Replay; when
// it returns an error the log rolls back to its previous state (or, if
// the rollback itself fails, refuses all further appends).
func (l *Log) Append(payload []byte) error {
	if len(payload) > MaxRecord {
		return fmt.Errorf("%w (%d bytes)", ErrTooLarge, len(payload))
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.broken != nil {
		return fmt.Errorf("wal: log damaged by earlier failed append: %w", l.broken)
	}
	start := time.Now()
	buf := make([]byte, recordHeader+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(payload, castagnoli))
	copy(buf[recordHeader:], payload)

	if _, err := l.f.Write(buf); err != nil {
		l.rollback()
		return fmt.Errorf("wal: append: %w", err)
	}
	if err := l.maybeSync(); err != nil {
		// The bytes are written but possibly not durable; keeping them
		// is safe (the record is valid), but the caller must not treat
		// the append as acknowledged.
		l.off += int64(len(buf))
		l.recs++
		return fmt.Errorf("wal: append sync: %w", err)
	}
	l.off += int64(len(buf))
	l.recs++
	l.opts.AppendHist.ObserveDuration(time.Since(start))
	return nil
}

// rollback restores the file to the last valid prefix after a failed
// write; if that fails too, the log refuses further appends.
func (l *Log) rollback() {
	if err := l.f.Truncate(l.off); err != nil {
		l.broken = err
		return
	}
	if _, err := l.f.Seek(l.off, io.SeekStart); err != nil {
		l.broken = err
	}
}

func (l *Log) maybeSync() error {
	if l.opts.Sync == SyncNever {
		return nil
	}
	return l.fsync()
}

// fsync times the flush into the fsync histogram; failures are observed
// too — a slow failing disk is exactly what the histogram should show.
func (l *Log) fsync() error {
	start := time.Now()
	err := l.f.Sync()
	l.opts.FsyncHist.ObserveDuration(time.Since(start))
	return err
}

// Sync forces the log to stable storage regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.fsync()
}

// Offset returns the end of the valid record prefix (the append
// position). A snapshot captures it before its consistent cut and hands
// it to TrimPrefix afterwards: every record below the offset is covered
// by the snapshot.
func (l *Log) Offset() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.off
}

// Records returns how many valid records the log holds.
func (l *Log) Records() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.recs
}

// Path returns the log's file path.
func (l *Log) Path() string { return l.path }

// TrimPrefix drops every record below off — a value previously returned
// by Offset — keeping records appended since. It rewrites the file
// atomically (suffix copied to a temp file, fsynced, renamed over the
// log, directory synced), so a crash at any point leaves either the old
// or the trimmed log, never less than the uncovered records.
func (l *Log) TrimPrefix(off int64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.broken != nil {
		return fmt.Errorf("wal: trim on damaged log: %w", l.broken)
	}
	if off <= headerLen {
		return nil
	}
	if off > l.off {
		return fmt.Errorf("wal: trim offset %d beyond valid prefix %d", off, l.off)
	}

	tmp, err := l.fs.CreateTemp(filepath.Dir(l.path), ".wal-trim-*")
	if err != nil {
		return fmt.Errorf("wal: trim: %w", err)
	}
	defer l.fs.Remove(tmp.Name())
	if _, err := tmp.Write(magic[:]); err != nil {
		tmp.Close()
		return fmt.Errorf("wal: trim: %w", err)
	}
	if _, err := l.f.Seek(off, io.SeekStart); err != nil {
		tmp.Close()
		return fmt.Errorf("wal: trim: %w", err)
	}
	kept, err := io.Copy(tmp, io.LimitReader(l.f, l.off-off))
	if err != nil || kept != l.off-off {
		tmp.Close()
		return fmt.Errorf("wal: trim copied %d of %d suffix bytes: %v", kept, l.off-off, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("wal: trim sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("wal: trim close: %w", err)
	}
	if err := l.fs.Rename(tmp.Name(), l.path); err != nil {
		return fmt.Errorf("wal: trim rename: %w", err)
	}
	if err := l.fs.SyncDir(filepath.Dir(l.path)); err != nil {
		return fmt.Errorf("wal: trim dir sync: %w", err)
	}

	// Switch the append handle to the trimmed file, rescanning it (the
	// suffix is small — records appended since the snapshot cut) to
	// recount records and position the next append.
	nf, err := l.fs.OpenFile(l.path, os.O_RDWR, 0o644)
	if err != nil {
		l.broken = err
		return fmt.Errorf("wal: reopening trimmed log: %w", err)
	}
	res, err := scan(nf, nil)
	if err != nil {
		nf.Close()
		l.broken = err
		return fmt.Errorf("wal: rescanning trimmed log: %w", err)
	}
	if _, err := nf.Seek(res.ValidBytes, io.SeekStart); err != nil {
		nf.Close()
		l.broken = err
		return fmt.Errorf("wal: reopening trimmed log: %w", err)
	}
	l.f.Close()
	l.f = nf
	l.recs = res.Records
	l.off = res.ValidBytes
	return nil
}

// Close syncs (under SyncAlways) and closes the log.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.maybeSync(); err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}

// ReplayResult describes what Replay (or Open's internal scan) found.
type ReplayResult struct {
	Records    int   // valid records delivered
	ValidBytes int64 // file offset where the valid prefix ends
	Torn       bool  // a torn/corrupt tail followed the valid prefix

	fresh bool // file absent or empty (no header yet)
}

// Replay reads the log at path, calling fn for each valid record in
// order, and stops cleanly at the first torn or corrupt record — the
// contract that makes the log safe to append to without write barriers: a
// crash mid-append tears only the final record, and recovery keeps
// everything acknowledged before it. A missing or empty file replays zero
// records. fn's error aborts the replay and is returned wrapped; fn may
// retain payload only by copying it.
func Replay(path string, fsys faultfs.FS, fn func(payload []byte) error) (ReplayResult, error) {
	if fsys == nil {
		fsys = faultfs.OS
	}
	f, err := fsys.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return ReplayResult{fresh: true, ValidBytes: headerLen}, nil
		}
		return ReplayResult{}, fmt.Errorf("wal: replay open: %w", err)
	}
	defer f.Close()
	return scan(f, fn)
}

// scan walks the record stream from the start of f, delivering payloads
// to fn (when non-nil) and locating the end of the valid prefix.
func scan(f faultfs.File, fn func([]byte) error) (ReplayResult, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return ReplayResult{}, fmt.Errorf("wal: scan: %w", err)
	}
	var hdr [6]byte
	n, err := io.ReadFull(f, hdr[:])
	if n == 0 && (err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF)) {
		return ReplayResult{fresh: true, ValidBytes: headerLen}, nil
	}
	if err != nil {
		return ReplayResult{}, fmt.Errorf("wal: reading header: %w", err)
	}
	if hdr != magic {
		return ReplayResult{}, fmt.Errorf("wal: bad magic %q (not a WAL file)", hdr)
	}

	res := ReplayResult{ValidBytes: headerLen}
	var rh [recordHeader]byte
	for {
		n, err := io.ReadFull(f, rh[:])
		if n == 0 && err == io.EOF {
			return res, nil // clean end
		}
		if err != nil {
			res.Torn = true // partial record header
			return res, nil
		}
		ln := binary.LittleEndian.Uint32(rh[0:4])
		want := binary.LittleEndian.Uint32(rh[4:8])
		if ln > MaxRecord {
			res.Torn = true // implausible length: corrupt, not an alloc
			return res, nil
		}
		payload := make([]byte, ln)
		if _, err := io.ReadFull(f, payload); err != nil {
			res.Torn = true // partial payload
			return res, nil
		}
		if crc32.Checksum(payload, castagnoli) != want {
			res.Torn = true // bit rot or torn overwrite
			return res, nil
		}
		if fn != nil {
			if err := fn(payload); err != nil {
				return res, fmt.Errorf("wal: replay record %d: %w", res.Records, err)
			}
		}
		res.Records++
		res.ValidBytes += recordHeader + int64(ln)
	}
}
