// Package wal is an append-only, segmented write-ahead log: the
// durability floor under the treesimd server's live writes. An insert or
// delete is acknowledged only after its record is appended here (and,
// under the default policy, fsynced), so a crash at any point loses
// nothing that was acknowledged — recovery is snapshot-load followed by
// replay of this log.
//
// The log is a sequence of segment files, rotated when the active one
// reaches Options.MaxSegmentBytes:
//
//	<base>-000001.log, <base>-000002.log, ...
//
// where <base> is the configured path with its extension stripped
// ("index.wal" → "index-000001.log"). A pre-segmentation log at the exact
// configured path is adopted as segment 1 on first open. Each segment is
// self-framed:
//
//	magic "TSWL1\x00"
//	records, each: u32 payload length | u32 CRC32C(payload) | payload
//
// All integers are little-endian; the checksum is CRC32-Castagnoli. The
// format is designed for crash recovery rather than error correction:
// Replay delivers records in order across segment boundaries and stops
// cleanly at the first torn or corrupt record (a partial header, a
// partial payload, an implausible length, or a checksum mismatch),
// treating everything before it as the durable prefix. Open discards such
// a tail before appending, so a log that survived a crash mid-append
// keeps accepting records.
//
// Positions (Offset, TrimPrefix) are logical and strictly monotonic
// across rotations: segment sequence number in the high bits, byte offset
// within the segment in the low bits. Trimming deletes whole segments
// below the cut, so checkpoint-driven truncation is O(segments), never a
// rewrite of live records — and recovery time is bounded by checkpoint
// age, not corpus age.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"treesim/internal/faultfs"
	"treesim/internal/obs"
)

// MaxRecord caps one record's payload, mirroring the codec's tree cap: a
// length prefix beyond it is treated as corruption, never as an
// allocation request.
const MaxRecord = 1 << 26

var magic = [6]byte{'T', 'S', 'W', 'L', '1', 0}

const headerLen = int64(len(magic))

// recordHeader is u32 length + u32 CRC32C.
const recordHeader = 8

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// offBits is how many low bits of a position hold the in-segment byte
// offset; segments are capped far below 2^40 bytes (1 TiB).
const offBits = 40

// pos packs (segment sequence, in-segment offset) into one monotonic
// int64: rotation bumps the sequence, appending bumps the offset.
func pos(seq, off int64) int64 { return seq<<offBits | off }

// seqOf extracts the segment sequence a position falls in.
func seqOf(p int64) int64 { return p >> offBits }

// SyncPolicy selects when appends reach stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append: an acknowledged record
	// survives power loss. The default.
	SyncAlways SyncPolicy = iota
	// SyncNever leaves flushing to the OS: records survive a process
	// crash but a power cut may lose the recently appended tail.
	SyncNever
)

// ParseSyncPolicy maps the flag spellings "always" and "never" (also
// "none") to a policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "never", "none":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("wal: unknown sync policy %q (want always or never)", s)
}

// Options tunes Open; the zero value is SyncAlways on the real
// filesystem with no rotation.
type Options struct {
	Sync SyncPolicy
	// FS is the filesystem to write through; nil means the real one.
	// Tests inject faults here (see internal/faultfs).
	FS faultfs.FS
	// MaxSegmentBytes rotates the active segment once it reaches this
	// size, bounding both the unit of trimming and the tail a recovery
	// replays past the last checkpoint. 0 disables rotation (one segment
	// grows unbounded, trimmed only at full-coverage checkpoints).
	MaxSegmentBytes int64
	// AppendHist, when non-nil, records the wall time of each successful
	// Append (write plus any policy fsync) in seconds — the latency an
	// insert pays for durability before it can be acknowledged.
	AppendHist *obs.Histogram
	// FsyncHist, when non-nil, records the wall time of each fsync issued
	// by the log (per-record under SyncAlways, plus explicit Sync calls).
	FsyncHist *obs.Histogram
}

func (o Options) fs() faultfs.FS {
	if o.FS == nil {
		return faultfs.OS
	}
	return o.FS
}

// ErrTooLarge rejects appends beyond MaxRecord.
var ErrTooLarge = errors.New("wal: record exceeds MaxRecord")

// segment is one on-disk file of the log.
type segment struct {
	seq  int64
	path string
	recs int   // valid records
	size int64 // end of the valid record prefix (bytes, incl. header)
}

// Log is an open write-ahead log. Methods are safe for concurrent use.
type Log struct {
	mu   sync.Mutex
	fs   faultfs.FS
	f    faultfs.File // active (last) segment, positioned at its valid end
	path string       // configured base path
	opts Options
	segs []segment // ascending seq; last is active
	// broken is set when a failed append could not be rolled back: the
	// file may end in a torn record that later appends must not follow
	// (replay would never reach them).
	broken error
}

// segName returns the file name of segment seq for a configured path:
// the path with its extension stripped, "-<seq, 6 digits>.log" appended.
func segName(path string, seq int64) string {
	base := strings.TrimSuffix(path, filepath.Ext(path))
	return fmt.Sprintf("%s-%06d.log", base, seq)
}

// segSeq parses a segment file name back to its sequence number, or -1.
func segSeq(path, name string) int64 {
	base := strings.TrimSuffix(filepath.Base(path), filepath.Ext(filepath.Base(path)))
	rest, ok := strings.CutPrefix(name, base+"-")
	if !ok {
		return -1
	}
	digits, ok := strings.CutSuffix(rest, ".log")
	if !ok || len(digits) < 6 {
		return -1
	}
	n, err := strconv.ParseInt(digits, 10, 64)
	if err != nil || n <= 0 {
		return -1
	}
	return n
}

// listSegments returns the existing segment files for path in ascending
// sequence order.
func listSegments(fsys faultfs.FS, path string) ([]segment, error) {
	dir := filepath.Dir(path)
	names, err := fsys.ReadDir(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, fmt.Errorf("wal: listing segments: %w", err)
	}
	var segs []segment
	for _, name := range names {
		if seq := segSeq(path, name); seq > 0 {
			segs = append(segs, segment{seq: seq, path: filepath.Join(dir, name)})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].seq < segs[j].seq })
	return segs, nil
}

// legacyExists reports whether a pre-segmentation log sits at the exact
// configured path.
func legacyExists(fsys faultfs.FS, path string) bool {
	f, err := fsys.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return false
	}
	f.Close()
	return true
}

// Open opens (creating if absent) the segmented log rooted at path for
// appending. A pre-segmentation single-file log at path is adopted as
// segment 1 first. A torn or corrupt tail left by a crash is truncated
// away, so the returned log appends after the last valid record; segments
// stranded beyond a mid-log tear (unreachable by Replay's stop-at-first-
// tear contract) are removed so future appends stay replayable. Replay
// the log before opening it for append when recovering state.
func Open(path string, opts Options) (*Log, error) {
	fsys := opts.fs()
	segs, err := listSegments(fsys, path)
	if err != nil {
		return nil, err
	}
	if legacyExists(fsys, path) {
		if len(segs) > 0 {
			return nil, fmt.Errorf("wal: both a legacy log %s and segment files exist — remove one", path)
		}
		adopted := segName(path, 1)
		if err := fsys.Rename(path, adopted); err != nil {
			return nil, fmt.Errorf("wal: adopting legacy log: %w", err)
		}
		if err := fsys.SyncDir(filepath.Dir(path)); err != nil {
			return nil, fmt.Errorf("wal: adopting legacy log: %w", err)
		}
		segs = []segment{{seq: 1, path: adopted}}
	}
	l := &Log{fs: fsys, path: path, opts: opts}
	if len(segs) == 0 {
		if err := l.createSegment(1); err != nil {
			return nil, err
		}
		return l, nil
	}

	// Scan every segment, locating the end of the valid record stream.
	for i := range segs {
		f, err := fsys.OpenFile(segs[i].path, os.O_RDWR, 0o644)
		if err != nil {
			return nil, fmt.Errorf("wal: open segment: %w", err)
		}
		res, err := scan(f, nil)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: segment %s: %w", segs[i].path, err)
		}
		segs[i].recs = res.Records
		segs[i].size = res.validBytes
		last := i == len(segs)-1
		if res.Torn || res.fresh {
			// The valid stream ends inside this segment. Truncate the
			// tear away and drop any later segments: records there are
			// unreachable (Replay stops at the first tear) and appending
			// behind them would hide new records the same way.
			if err := f.Truncate(res.validBytes); err != nil {
				f.Close()
				return nil, fmt.Errorf("wal: truncating torn tail: %w", err)
			}
			if res.fresh && res.validBytes == headerLen {
				// A crash may have left a zero-byte or partial-header
				// file; rewrite the header so the segment self-frames.
				if _, err := f.Seek(0, io.SeekStart); err != nil {
					f.Close()
					return nil, fmt.Errorf("wal: rewriting header: %w", err)
				}
				if err := f.Truncate(0); err != nil {
					f.Close()
					return nil, fmt.Errorf("wal: rewriting header: %w", err)
				}
				if _, err := f.Write(magic[:]); err != nil {
					f.Close()
					return nil, fmt.Errorf("wal: rewriting header: %w", err)
				}
			}
			for _, dead := range segs[i+1:] {
				if err := fsys.Remove(dead.path); err != nil {
					f.Close()
					return nil, fmt.Errorf("wal: removing unreachable segment: %w", err)
				}
			}
			segs = segs[:i+1]
			last = true
		}
		if !last {
			f.Close()
			continue
		}
		if _, err := f.Seek(segs[i].size, io.SeekStart); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: seeking to append position: %w", err)
		}
		l.f = f
		break
	}
	l.segs = segs
	if err := l.maybeSync(); err != nil {
		l.f.Close()
		return nil, err
	}
	return l, nil
}

// createSegment makes segment seq the active one: file created, header
// written and synced, directory synced. Called with mu held (or before
// the log is shared).
func (l *Log) createSegment(seq int64) error {
	path := segName(l.path, seq)
	f, err := l.fs.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: creating segment: %w", err)
	}
	if _, err := f.Write(magic[:]); err != nil {
		f.Close()
		return fmt.Errorf("wal: writing segment header: %w", err)
	}
	if l.opts.Sync != SyncNever {
		if err := l.fsyncFile(f); err != nil {
			f.Close()
			return fmt.Errorf("wal: syncing segment header: %w", err)
		}
		if err := l.fs.SyncDir(filepath.Dir(path)); err != nil {
			f.Close()
			return fmt.Errorf("wal: syncing segment dir: %w", err)
		}
	}
	if l.f != nil {
		l.f.Close()
	}
	l.f = f
	l.segs = append(l.segs, segment{seq: seq, path: path, size: headerLen})
	return nil
}

// active returns the last (append-target) segment. Called with mu held.
func (l *Log) active() *segment { return &l.segs[len(l.segs)-1] }

// rotate seals the active segment and opens the next one. The old
// segment is fsynced first so its records are durable independent of the
// sync policy — a sealed segment is never written again. Called with mu
// held.
func (l *Log) rotate() error {
	if err := l.fsyncFile(l.f); err != nil {
		return fmt.Errorf("wal: rotate sync: %w", err)
	}
	return l.createSegment(l.active().seq + 1)
}

// Append adds one record and, under SyncAlways, fsyncs it. When Append
// returns nil the record will be delivered by every future Replay; when
// it returns an error the log rolls back to its previous state (or, if
// the rollback itself fails, refuses all further appends). The active
// segment rotates first when it has reached Options.MaxSegmentBytes.
func (l *Log) Append(payload []byte) error {
	if len(payload) > MaxRecord {
		return fmt.Errorf("%w (%d bytes)", ErrTooLarge, len(payload))
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.broken != nil {
		return fmt.Errorf("wal: log damaged by earlier failed append: %w", l.broken)
	}
	if max := l.opts.MaxSegmentBytes; max > 0 && l.active().size >= max && l.active().size > headerLen {
		// A failed rotation leaves the current segment active and intact;
		// the caller sees the error (degraded mode) and the next append
		// retries the rotation.
		if err := l.rotate(); err != nil {
			return err
		}
	}
	start := time.Now()
	buf := make([]byte, recordHeader+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(payload, castagnoli))
	copy(buf[recordHeader:], payload)

	if _, err := l.f.Write(buf); err != nil {
		l.rollback()
		return fmt.Errorf("wal: append: %w", err)
	}
	if err := l.maybeSync(); err != nil {
		// The bytes hit the file but the append is refused, so the
		// record must not stay in the logical log: the caller's next
		// append would reuse its position, and replay — which keeps the
		// first record for a position and skips the second — would drop
		// the acknowledged one in favor of the refused one. Roll back;
		// if even that fails the log marks itself broken and refuses
		// further appends, which keeps positions unique.
		l.rollback()
		return fmt.Errorf("wal: append sync: %w", err)
	}
	l.active().size += int64(len(buf))
	l.active().recs++
	l.opts.AppendHist.ObserveDuration(time.Since(start))
	return nil
}

// rollback restores the active segment to the last valid prefix after a
// failed write; if that fails too, the log refuses further appends.
func (l *Log) rollback() {
	if err := l.f.Truncate(l.active().size); err != nil {
		l.broken = err
		return
	}
	if _, err := l.f.Seek(l.active().size, io.SeekStart); err != nil {
		l.broken = err
	}
}

func (l *Log) maybeSync() error {
	if l.opts.Sync == SyncNever {
		return nil
	}
	return l.fsyncFile(l.f)
}

// fsyncFile times the flush into the fsync histogram; failures are
// observed too — a slow failing disk is exactly what the histogram
// should show.
func (l *Log) fsyncFile(f faultfs.File) error {
	start := time.Now()
	err := f.Sync()
	l.opts.FsyncHist.ObserveDuration(time.Since(start))
	return err
}

// Sync forces the log to stable storage regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.fsyncFile(l.f)
}

// Offset returns the logical position where the valid record prefix ends
// (the append position): segment sequence in the high bits, in-segment
// byte offset in the low bits — strictly monotonic across rotations. A
// snapshot captures it before its consistent cut and hands it to
// TrimPrefix afterwards: every record below the position is covered by
// the snapshot.
func (l *Log) Offset() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	a := l.active()
	return pos(a.seq, a.size)
}

// Records returns how many valid records the log holds.
func (l *Log) Records() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, s := range l.segs {
		n += s.recs
	}
	return n
}

// Segments returns how many segment files the log currently spans.
func (l *Log) Segments() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.segs)
}

// Bytes returns the total valid bytes across all live segments — with
// Segments, the checkpoint-health gauge pair: a growing byte count means
// snapshots are falling behind the write rate.
func (l *Log) Bytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	var n int64
	for _, s := range l.segs {
		n += s.size
	}
	return n
}

// Path returns the log's configured base path.
func (l *Log) Path() string { return l.path }

// SegmentPath returns the on-disk file that holds segment seq of the log
// rooted at path — for tools and tests that inspect the raw files.
func SegmentPath(path string, seq int64) string { return segName(path, seq) }

// TrimPrefix drops records below off — a value previously returned by
// Offset — by deleting every sealed segment whose records all lie under
// it; a segment the cut falls inside is kept intact (its covered records
// replay idempotently). When off is the exact end of the log, the active
// segment rotates first so every covered segment can go and the log
// comes back empty. Deletion is per-file and crash-atomic: a crash
// mid-trim leaves a subset of the covered segments, never a damaged
// record stream.
func (l *Log) TrimPrefix(off int64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.broken != nil {
		return fmt.Errorf("wal: trim on damaged log: %w", l.broken)
	}
	if off <= 0 {
		return nil
	}
	a := l.active()
	end := pos(a.seq, a.size)
	if off > end {
		return fmt.Errorf("wal: trim offset %d beyond valid prefix %d", off, end)
	}
	if off == end && a.size > headerLen {
		// Everything is covered: rotate so the (now sealed) segment is
		// fully below the cut and gets deleted with the rest.
		if err := l.rotate(); err != nil {
			return fmt.Errorf("wal: trim rotate: %w", err)
		}
	}
	kept := l.segs[:0]
	removed := false
	for i, s := range l.segs {
		active := i == len(l.segs)-1
		if !active && pos(s.seq, s.size) <= off {
			if err := l.fs.Remove(s.path); err != nil {
				return fmt.Errorf("wal: trim remove: %w", err)
			}
			removed = true
			continue
		}
		kept = append(kept, s)
	}
	l.segs = kept
	if removed {
		if err := l.fs.SyncDir(filepath.Dir(l.path)); err != nil {
			return fmt.Errorf("wal: trim dir sync: %w", err)
		}
	}
	return nil
}

// Close syncs (under SyncAlways) and closes the log.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.maybeSync(); err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}

// ReplayResult describes what Replay (or Open's internal scan) found.
type ReplayResult struct {
	Records  int   // valid records delivered
	Segments int   // segment files the valid prefix spans
	EndPos   int64 // logical position where the valid prefix ends
	Torn     bool  // a torn/corrupt tail followed the valid prefix

	validBytes int64 // in-file offset of the prefix end (single scan)
	fresh      bool  // file absent or empty (no complete header)
}

// Replay reads the log rooted at path — segment files in sequence order,
// or a pre-segmentation single file still at the exact path — calling fn
// for each valid record in order, and stops cleanly at the first torn or
// corrupt record — the contract that makes the log safe to append to
// without write barriers: a crash mid-append tears only the final
// record, and recovery keeps everything acknowledged before it. A
// missing or empty log replays zero records. fn's error aborts the
// replay and is returned wrapped; fn may retain payload only by copying
// it.
func Replay(path string, fsys faultfs.FS, fn func(payload []byte) error) (ReplayResult, error) {
	if fsys == nil {
		fsys = faultfs.OS
	}
	segs, err := listSegments(fsys, path)
	if err != nil {
		return ReplayResult{}, err
	}
	if legacyExists(fsys, path) {
		if len(segs) > 0 {
			return ReplayResult{}, fmt.Errorf("wal: both a legacy log %s and segment files exist — remove one", path)
		}
		segs = []segment{{seq: 1, path: path}}
	}
	if len(segs) == 0 {
		return ReplayResult{fresh: true, EndPos: pos(1, headerLen)}, nil
	}
	var out ReplayResult
	for _, s := range segs {
		f, err := fsys.OpenFile(s.path, os.O_RDONLY, 0)
		if err != nil {
			return out, fmt.Errorf("wal: replay open: %w", err)
		}
		res, err := scan(f, func(p []byte) error {
			if fn == nil {
				return nil
			}
			return fn(p)
		})
		f.Close()
		if err != nil {
			return out, fmt.Errorf("wal: segment %s: %w", s.path, err)
		}
		out.Records += res.Records
		out.Segments++
		out.EndPos = pos(s.seq, res.validBytes)
		if res.Torn {
			// Records in later segments are beyond the tear: the valid
			// prefix ends here, by contract.
			out.Torn = true
			return out, nil
		}
	}
	return out, nil
}

// scan walks the record stream from the start of f, delivering payloads
// to fn (when non-nil) and locating the end of the valid prefix.
func scan(f faultfs.File, fn func([]byte) error) (ReplayResult, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return ReplayResult{}, fmt.Errorf("wal: scan: %w", err)
	}
	var hdr [6]byte
	if _, err := io.ReadFull(f, hdr[:]); err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) {
		// Empty or partial-header file: a crash during segment creation.
		// Nothing is recorded here.
		return ReplayResult{fresh: true, validBytes: headerLen}, nil
	} else if err != nil {
		return ReplayResult{}, fmt.Errorf("wal: reading header: %w", err)
	}
	if hdr != magic {
		return ReplayResult{}, fmt.Errorf("wal: bad magic %q (not a WAL file)", hdr)
	}

	res := ReplayResult{validBytes: headerLen}
	var rh [recordHeader]byte
	for {
		n, err := io.ReadFull(f, rh[:])
		if n == 0 && err == io.EOF {
			return res, nil // clean end
		}
		if err != nil {
			res.Torn = true // partial record header
			return res, nil
		}
		ln := binary.LittleEndian.Uint32(rh[0:4])
		want := binary.LittleEndian.Uint32(rh[4:8])
		if ln > MaxRecord {
			res.Torn = true // implausible length: corrupt, not an alloc
			return res, nil
		}
		payload := make([]byte, ln)
		if _, err := io.ReadFull(f, payload); err != nil {
			res.Torn = true // partial payload
			return res, nil
		}
		if crc32.Checksum(payload, castagnoli) != want {
			res.Torn = true // bit rot or torn overwrite
			return res, nil
		}
		if fn != nil {
			if err := fn(payload); err != nil {
				return res, fmt.Errorf("wal: replay record %d: %w", res.Records, err)
			}
		}
		res.Records++
		res.validBytes += recordHeader + int64(ln)
	}
}
