package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"treesim/internal/faultfs"
	"treesim/internal/obs"
)

func walPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "insert.wal")
}

// seg returns the on-disk file of segment n for a configured path —
// where the data actually lives; the configured path itself only names
// the log.
func seg(path string, n int) string { return segName(path, int64(n)) }

// collect replays the log into a slice of payload copies.
func collect(t *testing.T, path string) ([][]byte, ReplayResult) {
	t.Helper()
	var got [][]byte
	res, err := Replay(path, nil, func(p []byte) error {
		got = append(got, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return got, res
}

func appendAll(t *testing.T, l *Log, payloads ...string) {
	t.Helper()
	for _, p := range payloads {
		if err := l.Append([]byte(p)); err != nil {
			t.Fatalf("append %q: %v", p, err)
		}
	}
}

func TestAppendReplayRoundTrip(t *testing.T) {
	path := walPath(t)
	l, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"first", "", "third record with some length", "4"}
	appendAll(t, l, want...)
	if l.Records() != 4 {
		t.Fatalf("Records() = %d, want 4", l.Records())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	got, res := collect(t, path)
	if res.Torn || res.Records != 4 {
		t.Fatalf("replay result %+v, want 4 clean records", res)
	}
	for i, w := range want {
		if string(got[i]) != w {
			t.Fatalf("record %d = %q, want %q", i, got[i], w)
		}
	}
}

func TestReplayMissingFile(t *testing.T) {
	got, res := collect(t, filepath.Join(t.TempDir(), "nope.wal"))
	if len(got) != 0 || res.Records != 0 || res.Torn {
		t.Fatalf("missing file replayed %d records, %+v", len(got), res)
	}
}

func TestReplayRejectsForeignFile(t *testing.T) {
	path := walPath(t)
	os.WriteFile(seg(path, 1), []byte("definitely not a WAL"), 0o644)
	if _, err := Replay(path, nil, nil); err == nil {
		t.Fatal("foreign file replayed without error")
	}
}

// TestLegacySingleFileAdopted: a pre-segmentation log at the exact
// configured path replays as-is and is renamed to segment 1 on Open, so
// upgrades keep every record without a migration step.
func TestLegacySingleFileAdopted(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "insert.wal")
	// Build an old-format file: segment files are byte-identical to the
	// pre-segmentation format, so write one and move it to the bare path.
	l, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, "old-1", "old-2")
	l.Close()
	if err := os.Rename(seg(path, 1), path); err != nil {
		t.Fatal(err)
	}

	got, res := collect(t, path)
	if res.Records != 2 || string(got[0]) != "old-1" {
		t.Fatalf("legacy replay %q (%+v)", got, res)
	}

	l, err = Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if l.Records() != 2 {
		t.Fatalf("adopted log sees %d records, want 2", l.Records())
	}
	appendAll(t, l, "new-3")
	l.Close()
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("legacy file still present after adoption: %v", err)
	}
	got, res = collect(t, path)
	if res.Records != 3 || string(got[2]) != "new-3" {
		t.Fatalf("after adoption %q (%+v)", got, res)
	}
}

// TestRotationSplitsSegments: with a small segment cap, appends rotate
// into new files; replay crosses the boundaries in order and Offset stays
// strictly monotonic across them.
func TestRotationSplitsSegments(t *testing.T) {
	path := walPath(t)
	l, err := Open(path, Options{MaxSegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	var want []string
	prev := int64(0)
	for i := 0; i < 5; i++ {
		p := fmt.Sprintf("record-%d", i)
		want = append(want, p)
		appendAll(t, l, p)
		if off := l.Offset(); off <= prev {
			t.Fatalf("Offset not monotonic across rotation: %d then %d", prev, off)
		} else {
			prev = off
		}
	}
	if l.Segments() != 5 {
		t.Fatalf("Segments() = %d, want 5 (one record each)", l.Segments())
	}
	if l.Bytes() <= 0 {
		t.Fatalf("Bytes() = %d", l.Bytes())
	}
	l.Close()

	got, res := collect(t, path)
	if res.Torn || res.Records != 5 || res.Segments != 5 {
		t.Fatalf("replay %+v, want 5 records over 5 segments", res)
	}
	for i, w := range want {
		if string(got[i]) != w {
			t.Fatalf("record %d = %q, want %q", i, got[i], w)
		}
	}
}

// TestReopenAcrossSegments: a restarted process opens the multi-segment
// log and keeps appending into the last segment.
func TestReopenAcrossSegments(t *testing.T) {
	path := walPath(t)
	l, err := Open(path, Options{MaxSegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, "a", "b", "c")
	l.Close()

	l, err = Open(path, Options{MaxSegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if l.Records() != 3 || l.Segments() != 3 {
		t.Fatalf("reopened: %d records in %d segments", l.Records(), l.Segments())
	}
	appendAll(t, l, "d")
	l.Close()
	got, res := collect(t, path)
	if res.Records != 4 || string(got[3]) != "d" {
		t.Fatalf("after reopen %q (%+v)", got, res)
	}
}

// TestTornTailRecoversPrefix truncates the active segment at every byte
// boundary of the final record: replay must always deliver the full
// prefix and flag (but not fail on) the tear.
func TestTornTailRecoversPrefix(t *testing.T) {
	path := walPath(t)
	l, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, "alpha", "beta", "gamma-the-last")
	l.Close()
	full, err := os.ReadFile(seg(path, 1))
	if err != nil {
		t.Fatal(err)
	}
	twoEnd := len(full) - recordHeader - len("gamma-the-last")

	for cut := twoEnd + 1; cut < len(full); cut++ {
		if err := os.WriteFile(seg(path, 1), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		got, res := collect(t, path)
		if !res.Torn {
			t.Fatalf("cut at %d: tear not detected", cut)
		}
		if res.Records != 2 || len(got) != 2 || string(got[0]) != "alpha" || string(got[1]) != "beta" {
			t.Fatalf("cut at %d: recovered %d records %q, want the 2-record prefix", cut, res.Records, got)
		}
		if res.EndPos != pos(1, int64(twoEnd)) {
			t.Fatalf("cut at %d: valid prefix ends at %d, want %d", cut, res.EndPos, pos(1, int64(twoEnd)))
		}
	}
}

// TestTornTombstoneAtRotationBoundary: the tear lands inside a 9-byte
// tombstone record that rotation made the first record of a fresh
// segment — the smallest extended record at the trickiest position.
// Every prefix of it must replay to exactly the sealed segment's
// records, and Open must truncate the tear and accept new appends.
func TestTornTombstoneAtRotationBoundary(t *testing.T) {
	path := walPath(t)
	insert := EncodeInsert(0, "a(b,c)")
	// Cap the segment at exactly its size after the insert: the next
	// append rotates first, so the tombstone opens segment 2.
	max := headerLen + int64(recordHeader+len(insert))
	l, err := Open(path, Options{MaxSegmentBytes: max})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(insert); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(EncodeTombstone(0)); err != nil {
		t.Fatal(err)
	}
	if l.Segments() != 2 {
		t.Fatalf("Segments() = %d, want the tombstone rotated into segment 2", l.Segments())
	}
	l.Close()

	full, err := os.ReadFile(seg(path, 2))
	if err != nil {
		t.Fatal(err)
	}
	if want := int(headerLen) + recordHeader + 9; len(full) != want {
		t.Fatalf("segment 2 is %d bytes, want magic + framed 9-byte tombstone = %d", len(full), want)
	}

	for cut := int(headerLen); cut < len(full); cut++ {
		if err := os.WriteFile(seg(path, 2), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		got, res := collect(t, path)
		if res.Records != 1 || len(got) != 1 || !bytes.Equal(got[0], insert) {
			t.Fatalf("cut at %d: recovered %d records, want just the sealed insert", cut, res.Records)
		}
		if torn := cut > int(headerLen); res.Torn != torn {
			t.Fatalf("cut at %d: Torn = %v, want %v", cut, res.Torn, torn)
		}
	}

	// Open on the worst tear (one byte short of complete) truncates it
	// and the log keeps accepting records.
	if err := os.WriteFile(seg(path, 2), full[:len(full)-1], 0o644); err != nil {
		t.Fatal(err)
	}
	l, err = Open(path, Options{MaxSegmentBytes: max})
	if err != nil {
		t.Fatal(err)
	}
	if l.Records() != 1 {
		t.Fatalf("reopened log sees %d records, want 1", l.Records())
	}
	if err := l.Append(EncodeTombstone(0)); err != nil {
		t.Fatal(err)
	}
	l.Close()
	got, res := collect(t, path)
	if res.Torn || res.Records != 2 || !bytes.Equal(got[1], EncodeTombstone(0)) {
		t.Fatalf("after reopen: %q (%+v), want insert + retried tombstone", got, res)
	}
}

// TestCorruptTailRecoversPrefix flips one byte in the final record (header
// and payload positions): checksum or length validation must stop replay
// at the tear with the prefix intact.
func TestCorruptTailRecoversPrefix(t *testing.T) {
	path := walPath(t)
	l, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, "alpha", "beta", "gamma-the-last")
	l.Close()
	full, err := os.ReadFile(seg(path, 1))
	if err != nil {
		t.Fatal(err)
	}
	twoEnd := len(full) - recordHeader - len("gamma-the-last")

	for flip := twoEnd; flip < len(full); flip++ {
		mut := append([]byte(nil), full...)
		mut[flip] ^= 0x40
		if err := os.WriteFile(seg(path, 1), mut, 0o644); err != nil {
			t.Fatal(err)
		}
		got, res := collect(t, path)
		if res.Records != 2 || len(got) != 2 {
			t.Fatalf("flip at %d: recovered %d records, want 2", flip, res.Records)
		}
		if !res.Torn {
			t.Fatalf("flip at %d: corruption not flagged", flip)
		}
	}
}

// TestCorruptMiddleStopsThere: a bit flip in an interior record ends the
// valid prefix at that record; later (physically intact) records — even
// whole later segments — are not delivered, and Open removes them so
// appends stay replayable. Order is part of the contract.
func TestCorruptMiddleStopsThere(t *testing.T) {
	path := walPath(t)
	l, err := Open(path, Options{MaxSegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, "alpha", "beta", "gamma")
	l.Close()
	// Flip a payload byte of "beta" (segment 2's first record).
	full, _ := os.ReadFile(seg(path, 2))
	mut := append([]byte(nil), full...)
	mut[int(headerLen)+recordHeader] ^= 0x01
	os.WriteFile(seg(path, 2), mut, 0o644)

	got, res := collect(t, path)
	if len(got) != 1 || string(got[0]) != "alpha" || !res.Torn {
		t.Fatalf("corrupt middle segment: replayed %q (%+v), want just [alpha]", got, res)
	}

	l, err = Open(path, Options{MaxSegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if l.Records() != 1 {
		t.Fatalf("reopened log sees %d records, want 1", l.Records())
	}
	if _, err := os.Stat(seg(path, 3)); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("segment beyond the tear not removed — its records are unreachable")
	}
	appendAll(t, l, "delta")
	l.Close()
	got, res = collect(t, path)
	if res.Torn || res.Records != 2 || string(got[1]) != "delta" {
		t.Fatalf("after reopen %q (%+v)", got, res)
	}
}

// TestOpenTruncatesTornTailAndAppends: after a crash mid-append, Open
// discards the tear so new appends land where replay will find them.
func TestOpenTruncatesTornTailAndAppends(t *testing.T) {
	path := walPath(t)
	l, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, "alpha", "beta")
	l.Close()
	full, _ := os.ReadFile(seg(path, 1))
	os.WriteFile(seg(path, 1), full[:len(full)-3], 0o644) // tear "beta"

	l, err = Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if l.Records() != 1 {
		t.Fatalf("reopened log sees %d records, want 1", l.Records())
	}
	appendAll(t, l, "gamma")
	l.Close()

	got, res := collect(t, path)
	if res.Torn || res.Records != 2 {
		t.Fatalf("after reopen+append: %+v, want 2 clean records", res)
	}
	if string(got[0]) != "alpha" || string(got[1]) != "gamma" {
		t.Fatalf("records %q, want [alpha gamma]", got)
	}
}

func TestAppendRejectsOversizedRecord(t *testing.T) {
	l, err := Open(walPath(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append(make([]byte, MaxRecord+1)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized append: %v, want ErrTooLarge", err)
	}
}

// TestFailedWriteRollsBack: an injected write failure must leave the log
// exactly as before — the next append succeeds and replay never sees the
// failed record.
func TestFailedWriteRollsBack(t *testing.T) {
	path := walPath(t)
	in := &faultfs.Injector{}
	l, err := Open(path, Options{FS: in})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, "good-1")
	in.SetFailWriteN(in.Writes() + 1) // fail the next record write
	if err := l.Append([]byte("never-acked")); err == nil {
		t.Fatal("append with injected write failure succeeded")
	}
	appendAll(t, l, "good-2")
	l.Close()

	got, res := collect(t, path)
	if res.Torn || res.Records != 2 {
		t.Fatalf("%+v, want 2 clean records", res)
	}
	if string(got[0]) != "good-1" || string(got[1]) != "good-2" {
		t.Fatalf("records %q", got)
	}
}

// TestSyncFailureRollsBack: a record whose bytes landed but whose fsync
// failed was never acknowledged, so it must not stay in the log — if it
// did, the next append would reuse its position and replay (first
// record per position wins) would drop the acknowledged record in favor
// of the refused one.
func TestSyncFailureRollsBack(t *testing.T) {
	path := walPath(t)
	in := &faultfs.Injector{}
	l, err := Open(path, Options{FS: in, Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, "acked-1")
	in.SetFailSync(true)
	if err := l.Append([]byte("refused-by-sync")); err == nil {
		t.Fatal("append with failing fsync succeeded")
	}
	in.SetFailSync(false) // the disk heals
	appendAll(t, l, "acked-2")
	l.Close()

	got, res := collect(t, path)
	if res.Torn || res.Records != 2 {
		t.Fatalf("%+v, want 2 clean records", res)
	}
	if string(got[0]) != "acked-1" || string(got[1]) != "acked-2" {
		t.Fatalf("records %q, refused record must not survive", got)
	}
}

// TestShortWriteTornRecordRecovered: a short (torn) write that the
// process never gets to roll back — it "crashes" immediately — leaves a
// tail that replay discards and Open truncates.
func TestShortWriteTornRecordRecovered(t *testing.T) {
	path := walPath(t)
	in := &faultfs.Injector{}
	l, err := Open(path, Options{FS: in})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, "durable")
	in.SetShortWriteN(in.Writes() + 1)
	in.SetCrashAfterWriteN(in.Writes() + 1) // no rollback: truncate fails too
	if err := l.Append([]byte("torn-record-payload")); err == nil {
		t.Fatal("short write acked")
	}
	// The process is gone; a new one replays what's on disk.
	got, res := collect(t, path)
	if res.Records != 1 || string(got[0]) != "durable" {
		t.Fatalf("recovered %q (%+v), want [durable]", got, res)
	}
	if !res.Torn {
		t.Fatal("torn tail not flagged")
	}
}

// TestCrashBetweenAppends: records acked before the crash survive.
func TestCrashBetweenAppends(t *testing.T) {
	path := walPath(t)
	in := &faultfs.Injector{}
	l, err := Open(path, Options{FS: in})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, "first", "second")
	in.SetCrashAfterWriteN(in.Writes()) // crash now
	l.f.Write([]byte{0})                // trip the crash
	if err := l.Append([]byte("after-crash")); err == nil {
		t.Fatal("append after crash acked")
	}
	got, res := collect(t, path)
	if res.Records != 2 || string(got[0]) != "first" || string(got[1]) != "second" {
		t.Fatalf("recovered %q (%+v), want the 2 acked records", got, res)
	}
}

// TestTrimPrefix: trimming to a checkpoint cut deletes exactly the
// segments whose records are all covered — including the one the cut
// ends on — and the log keeps accepting appends.
func TestTrimPrefix(t *testing.T) {
	path := walPath(t)
	l, err := Open(path, Options{MaxSegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, "covered-1", "covered-2")
	cut := l.Offset()
	appendAll(t, l, "uncovered-3")
	if err := l.TrimPrefix(cut); err != nil {
		t.Fatalf("trim: %v", err)
	}
	if l.Records() != 1 {
		t.Fatalf("after trim Records() = %d, want 1", l.Records())
	}
	for _, n := range []int{1, 2} {
		if _, err := os.Stat(seg(path, n)); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("covered segment %d survived the trim", n)
		}
	}
	// The log keeps accepting appends after the trim.
	appendAll(t, l, "uncovered-4")
	l.Close()

	got, res := collect(t, path)
	if res.Torn || res.Records != 2 {
		t.Fatalf("%+v, want 2 records", res)
	}
	if string(got[0]) != "uncovered-3" || string(got[1]) != "uncovered-4" {
		t.Fatalf("records %q, want the uncovered suffix", got)
	}
}

// TestTrimPrefixMidSegment: a cut inside a segment keeps that whole
// segment — covered records replay idempotently; nothing is rewritten.
func TestTrimPrefixMidSegment(t *testing.T) {
	path := walPath(t)
	l, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, "covered-1")
	cut := l.Offset()
	appendAll(t, l, "uncovered-2")
	if err := l.TrimPrefix(cut); err != nil {
		t.Fatal(err)
	}
	if l.Records() != 2 {
		t.Fatalf("mid-segment trim dropped records: %d, want 2 (kept intact)", l.Records())
	}
	l.Close()
	_, res := collect(t, path)
	if res.Records != 2 {
		t.Fatalf("%+v", res)
	}
}

func TestTrimPrefixWholeLog(t *testing.T) {
	path := walPath(t)
	l, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, "a", "b", "c")
	before := l.Offset()
	if err := l.TrimPrefix(before); err != nil {
		t.Fatal(err)
	}
	if l.Records() != 0 {
		t.Fatalf("Records() = %d after full trim", l.Records())
	}
	if after := l.Offset(); after <= before {
		t.Fatalf("full trim moved Offset backwards: %d then %d", before, after)
	}
	appendAll(t, l, "fresh")
	l.Close()
	got, res := collect(t, path)
	if res.Records != 1 || string(got[0]) != "fresh" {
		t.Fatalf("recovered %q (%+v)", got, res)
	}
}

// TestTrimCrashKeepsUncovered: a crash midway through the trim's
// per-segment deletions leaves a subset of the covered segments gone;
// replay of what remains still yields every uncovered record.
func TestTrimCrashKeepsUncovered(t *testing.T) {
	path := walPath(t)
	l, err := Open(path, Options{MaxSegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, "covered-1", "covered-2", "uncovered")
	l.Close()
	// Simulate the crash state: the trim removed segment 1, died before
	// segment 2.
	if err := os.Remove(seg(path, 1)); err != nil {
		t.Fatal(err)
	}
	got, res := collect(t, path)
	if res.Torn || res.Records != 2 {
		t.Fatalf("recovered %d records (%+v)", res.Records, res)
	}
	if string(got[1]) != "uncovered" {
		t.Fatalf("uncovered record lost: %q", got)
	}
	// A restart opens the gapped log and finishes normally.
	l, err = Open(path, Options{MaxSegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if l.Records() != 2 {
		t.Fatalf("reopened %d records, want 2", l.Records())
	}
	l.Close()
}

func TestSyncPolicies(t *testing.T) {
	for _, pol := range []SyncPolicy{SyncAlways, SyncNever} {
		path := walPath(t)
		l, err := Open(path, Options{Sync: pol})
		if err != nil {
			t.Fatal(err)
		}
		appendAll(t, l, fmt.Sprintf("policy-%d", pol))
		if err := l.Sync(); err != nil { // manual sync always works
			t.Fatal(err)
		}
		l.Close()
		_, res := collect(t, path)
		if res.Records != 1 {
			t.Fatalf("policy %d: %d records", pol, res.Records)
		}
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for s, want := range map[string]SyncPolicy{"always": SyncAlways, "never": SyncNever, "none": SyncNever} {
		got, err := ParseSyncPolicy(s)
		if err != nil || got != want {
			t.Errorf("ParseSyncPolicy(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Error("bogus policy accepted")
	}
}

// TestBinaryPayloads: binary payloads with embedded zeros and high bytes
// survive byte-exact.
func TestBinaryPayloads(t *testing.T) {
	path := walPath(t)
	l, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 4096)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	if err := l.Append(payload); err != nil {
		t.Fatal(err)
	}
	l.Close()
	got, _ := collect(t, path)
	if !bytes.Equal(got[0], payload) {
		t.Fatal("binary payload mangled")
	}
}

// TestAppendFsyncHistograms: every successful append lands in the append
// histogram, and the fsync histogram follows the sync policy — one flush
// per record under SyncAlways, none under SyncNever.
func TestAppendFsyncHistograms(t *testing.T) {
	appendH := obs.NewHistogram(obs.DefDurationBuckets)
	fsyncH := obs.NewHistogram(obs.DefDurationBuckets)
	l, err := Open(walPath(t), Options{AppendHist: appendH, FsyncHist: fsyncH})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := l.Append([]byte("rec")); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil { // explicit sync counts too
		t.Fatal(err)
	}
	l.Close()

	if got := appendH.Snapshot().Count; got != 3 {
		t.Errorf("append histogram count %d, want 3", got)
	}
	// Header write at Open + 3 per-record syncs + 1 explicit + 1 at Close.
	if got := fsyncH.Snapshot().Count; got != 6 {
		t.Errorf("fsync histogram count %d, want 6", got)
	}
	if s := appendH.Snapshot(); s.Sum <= 0 {
		t.Errorf("append histogram sum %v, want > 0", s.Sum)
	}

	// SyncNever: appends recorded, no fsyncs (and nil histograms are fine).
	fsyncH2 := obs.NewHistogram(obs.DefDurationBuckets)
	l2, err := Open(walPath(t), Options{Sync: SyncNever, FsyncHist: fsyncH2})
	if err != nil {
		t.Fatal(err)
	}
	if err := l2.Append([]byte("rec")); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	if got := fsyncH2.Snapshot().Count; got != 0 {
		t.Errorf("SyncNever issued %d fsyncs", got)
	}
}
