package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"treesim/internal/faultfs"
	"treesim/internal/obs"
)

func walPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "insert.wal")
}

// collect replays the log into a slice of payload copies.
func collect(t *testing.T, path string) ([][]byte, ReplayResult) {
	t.Helper()
	var got [][]byte
	res, err := Replay(path, nil, func(p []byte) error {
		got = append(got, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return got, res
}

func appendAll(t *testing.T, l *Log, payloads ...string) {
	t.Helper()
	for _, p := range payloads {
		if err := l.Append([]byte(p)); err != nil {
			t.Fatalf("append %q: %v", p, err)
		}
	}
}

func TestAppendReplayRoundTrip(t *testing.T) {
	path := walPath(t)
	l, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"first", "", "third record with some length", "4"}
	appendAll(t, l, want...)
	if l.Records() != 4 {
		t.Fatalf("Records() = %d, want 4", l.Records())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	got, res := collect(t, path)
	if res.Torn || res.Records != 4 {
		t.Fatalf("replay result %+v, want 4 clean records", res)
	}
	for i, w := range want {
		if string(got[i]) != w {
			t.Fatalf("record %d = %q, want %q", i, got[i], w)
		}
	}
}

func TestReplayMissingFile(t *testing.T) {
	got, res := collect(t, filepath.Join(t.TempDir(), "nope.wal"))
	if len(got) != 0 || res.Records != 0 || res.Torn {
		t.Fatalf("missing file replayed %d records, %+v", len(got), res)
	}
}

func TestReplayRejectsForeignFile(t *testing.T) {
	path := walPath(t)
	os.WriteFile(path, []byte("definitely not a WAL"), 0o644)
	if _, err := Replay(path, nil, nil); err == nil {
		t.Fatal("foreign file replayed without error")
	}
}

// TestTornTailRecoversPrefix truncates the file at every byte boundary of
// the final record: replay must always deliver the full prefix and flag
// (but not fail on) the tear.
func TestTornTailRecoversPrefix(t *testing.T) {
	path := walPath(t)
	l, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, "alpha", "beta", "gamma-the-last")
	l.Close()
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	twoEnd := len(full) - recordHeader - len("gamma-the-last")

	for cut := twoEnd + 1; cut < len(full); cut++ {
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		got, res := collect(t, path)
		if !res.Torn {
			t.Fatalf("cut at %d: tear not detected", cut)
		}
		if res.Records != 2 || len(got) != 2 || string(got[0]) != "alpha" || string(got[1]) != "beta" {
			t.Fatalf("cut at %d: recovered %d records %q, want the 2-record prefix", cut, res.Records, got)
		}
		if res.ValidBytes != int64(twoEnd) {
			t.Fatalf("cut at %d: valid prefix ends at %d, want %d", cut, res.ValidBytes, twoEnd)
		}
	}
}

// TestCorruptTailRecoversPrefix flips one byte in the final record (header
// and payload positions): checksum or length validation must stop replay
// at the tear with the prefix intact.
func TestCorruptTailRecoversPrefix(t *testing.T) {
	path := walPath(t)
	l, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, "alpha", "beta", "gamma-the-last")
	l.Close()
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	twoEnd := len(full) - recordHeader - len("gamma-the-last")

	for flip := twoEnd; flip < len(full); flip++ {
		mut := append([]byte(nil), full...)
		mut[flip] ^= 0x40
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		got, res := collect(t, path)
		if res.Records != 2 || len(got) != 2 {
			t.Fatalf("flip at %d: recovered %d records, want 2", flip, res.Records)
		}
		if !res.Torn {
			t.Fatalf("flip at %d: corruption not flagged", flip)
		}
	}
}

// TestCorruptMiddleStopsThere: a bit flip in an interior record ends the
// valid prefix at that record; later (physically intact) records are not
// delivered — order is part of the contract.
func TestCorruptMiddleStopsThere(t *testing.T) {
	path := walPath(t)
	l, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, "alpha", "beta", "gamma")
	l.Close()
	full, _ := os.ReadFile(path)
	// Flip a payload byte of "alpha" (first record starts after the magic).
	mut := append([]byte(nil), full...)
	mut[int(headerLen)+recordHeader] ^= 0x01
	os.WriteFile(path, mut, 0o644)

	got, res := collect(t, path)
	if len(got) != 0 || res.Records != 0 || !res.Torn {
		t.Fatalf("corrupt first record: replayed %d records (%+v), want 0", len(got), res)
	}
}

// TestOpenTruncatesTornTailAndAppends: after a crash mid-append, Open
// discards the tear so new appends land where replay will find them.
func TestOpenTruncatesTornTailAndAppends(t *testing.T) {
	path := walPath(t)
	l, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, "alpha", "beta")
	l.Close()
	full, _ := os.ReadFile(path)
	os.WriteFile(path, full[:len(full)-3], 0o644) // tear "beta"

	l, err = Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if l.Records() != 1 {
		t.Fatalf("reopened log sees %d records, want 1", l.Records())
	}
	appendAll(t, l, "gamma")
	l.Close()

	got, res := collect(t, path)
	if res.Torn || res.Records != 2 {
		t.Fatalf("after reopen+append: %+v, want 2 clean records", res)
	}
	if string(got[0]) != "alpha" || string(got[1]) != "gamma" {
		t.Fatalf("records %q, want [alpha gamma]", got)
	}
}

func TestAppendRejectsOversizedRecord(t *testing.T) {
	l, err := Open(walPath(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append(make([]byte, MaxRecord+1)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized append: %v, want ErrTooLarge", err)
	}
}

// TestFailedWriteRollsBack: an injected write failure must leave the log
// exactly as before — the next append succeeds and replay never sees the
// failed record.
func TestFailedWriteRollsBack(t *testing.T) {
	path := walPath(t)
	in := &faultfs.Injector{}
	l, err := Open(path, Options{FS: in})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, "good-1")
	in.FailWriteN = in.Writes() + 1 // fail the next record write
	if err := l.Append([]byte("never-acked")); err == nil {
		t.Fatal("append with injected write failure succeeded")
	}
	appendAll(t, l, "good-2")
	l.Close()

	got, res := collect(t, path)
	if res.Torn || res.Records != 2 {
		t.Fatalf("%+v, want 2 clean records", res)
	}
	if string(got[0]) != "good-1" || string(got[1]) != "good-2" {
		t.Fatalf("records %q", got)
	}
}

// TestShortWriteTornRecordRecovered: a short (torn) write that the
// process never gets to roll back — it "crashes" immediately — leaves a
// tail that replay discards and Open truncates.
func TestShortWriteTornRecordRecovered(t *testing.T) {
	path := walPath(t)
	in := &faultfs.Injector{}
	l, err := Open(path, Options{FS: in})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, "durable")
	in.ShortWriteN = in.Writes() + 1
	in.CrashAfterWriteN = in.Writes() + 1 // no rollback: truncate fails too
	if err := l.Append([]byte("torn-record-payload")); err == nil {
		t.Fatal("short write acked")
	}
	// The process is gone; a new one replays what's on disk.
	got, res := collect(t, path)
	if res.Records != 1 || string(got[0]) != "durable" {
		t.Fatalf("recovered %q (%+v), want [durable]", got, res)
	}
	if !res.Torn {
		t.Fatal("torn tail not flagged")
	}
}

// TestCrashBetweenAppends: records acked before the crash survive.
func TestCrashBetweenAppends(t *testing.T) {
	path := walPath(t)
	in := &faultfs.Injector{}
	l, err := Open(path, Options{FS: in})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, "first", "second")
	in.CrashAfterWriteN = in.Writes() // crash now
	l.f.Write([]byte{0})              // trip the crash
	if err := l.Append([]byte("after-crash")); err == nil {
		t.Fatal("append after crash acked")
	}
	got, res := collect(t, path)
	if res.Records != 2 || string(got[0]) != "first" || string(got[1]) != "second" {
		t.Fatalf("recovered %q (%+v), want the 2 acked records", got, res)
	}
}

func TestTrimPrefix(t *testing.T) {
	path := walPath(t)
	l, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, "covered-1", "covered-2")
	cut := l.Offset()
	appendAll(t, l, "uncovered-3")
	if err := l.TrimPrefix(cut); err != nil {
		t.Fatalf("trim: %v", err)
	}
	if l.Records() != 1 {
		t.Fatalf("after trim Records() = %d, want 1", l.Records())
	}
	// The log keeps accepting appends after the trim.
	appendAll(t, l, "uncovered-4")
	l.Close()

	got, res := collect(t, path)
	if res.Torn || res.Records != 2 {
		t.Fatalf("%+v, want 2 records", res)
	}
	if string(got[0]) != "uncovered-3" || string(got[1]) != "uncovered-4" {
		t.Fatalf("records %q, want the uncovered suffix", got)
	}
}

func TestTrimPrefixWholeLog(t *testing.T) {
	path := walPath(t)
	l, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, "a", "b", "c")
	if err := l.TrimPrefix(l.Offset()); err != nil {
		t.Fatal(err)
	}
	if l.Records() != 0 {
		t.Fatalf("Records() = %d after full trim", l.Records())
	}
	appendAll(t, l, "fresh")
	l.Close()
	got, res := collect(t, path)
	if res.Records != 1 || string(got[0]) != "fresh" {
		t.Fatalf("recovered %q (%+v)", got, res)
	}
}

// TestTrimCrashKeepsUncovered: a crash during the trim's rename window
// leaves either the old or the new file; both contain every uncovered
// record.
func TestTrimCrashKeepsUncovered(t *testing.T) {
	path := walPath(t)
	in := &faultfs.Injector{}
	l, err := Open(path, Options{FS: in})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, "covered")
	cut := l.Offset()
	appendAll(t, l, "uncovered")
	in.CrashOnRename = true
	if err := l.TrimPrefix(cut); err == nil {
		t.Fatal("trim with crashed rename succeeded")
	}
	// Restart: the old file must still hold the uncovered record.
	got, res := collect(t, path)
	if res.Records != 2 {
		t.Fatalf("recovered %d records (%+v), want old intact log", res.Records, res)
	}
	if string(got[1]) != "uncovered" {
		t.Fatalf("uncovered record lost: %q", got)
	}
}

func TestSyncPolicies(t *testing.T) {
	for _, pol := range []SyncPolicy{SyncAlways, SyncNever} {
		path := walPath(t)
		l, err := Open(path, Options{Sync: pol})
		if err != nil {
			t.Fatal(err)
		}
		appendAll(t, l, fmt.Sprintf("policy-%d", pol))
		if err := l.Sync(); err != nil { // manual sync always works
			t.Fatal(err)
		}
		l.Close()
		_, res := collect(t, path)
		if res.Records != 1 {
			t.Fatalf("policy %d: %d records", pol, res.Records)
		}
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for s, want := range map[string]SyncPolicy{"always": SyncAlways, "never": SyncNever, "none": SyncNever} {
		got, err := ParseSyncPolicy(s)
		if err != nil || got != want {
			t.Errorf("ParseSyncPolicy(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Error("bogus policy accepted")
	}
}

// TestLargePayloadBytes: binary payloads with embedded zeros and high
// bytes survive byte-exact.
func TestBinaryPayloads(t *testing.T) {
	path := walPath(t)
	l, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 4096)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	if err := l.Append(payload); err != nil {
		t.Fatal(err)
	}
	l.Close()
	got, _ := collect(t, path)
	if !bytes.Equal(got[0], payload) {
		t.Fatal("binary payload mangled")
	}
}

// TestAppendFsyncHistograms: every successful append lands in the append
// histogram, and the fsync histogram follows the sync policy — one flush
// per record under SyncAlways, none under SyncNever.
func TestAppendFsyncHistograms(t *testing.T) {
	appendH := obs.NewHistogram(obs.DefDurationBuckets)
	fsyncH := obs.NewHistogram(obs.DefDurationBuckets)
	l, err := Open(walPath(t), Options{AppendHist: appendH, FsyncHist: fsyncH})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := l.Append([]byte("rec")); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil { // explicit sync counts too
		t.Fatal(err)
	}
	l.Close()

	if got := appendH.Snapshot().Count; got != 3 {
		t.Errorf("append histogram count %d, want 3", got)
	}
	// Header write at Open + 3 per-record syncs + 1 explicit + 1 at Close.
	if got := fsyncH.Snapshot().Count; got != 6 {
		t.Errorf("fsync histogram count %d, want 6", got)
	}
	if s := appendH.Snapshot(); s.Sum <= 0 {
		t.Errorf("append histogram sum %v, want > 0", s.Sum)
	}

	// SyncNever: appends recorded, no fsyncs (and nil histograms are fine).
	fsyncH2 := obs.NewHistogram(obs.DefDurationBuckets)
	l2, err := Open(walPath(t), Options{Sync: SyncNever, FsyncHist: fsyncH2})
	if err != nil {
		t.Fatal(err)
	}
	if err := l2.Append([]byte("rec")); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	if got := fsyncH2.Snapshot().Count; got != 0 {
		t.Errorf("SyncNever issued %d fsyncs", got)
	}
}
