package xmltree

import (
	"testing"

	"treesim/internal/tree"
)

// FuzzParseString checks that arbitrary input never panics the XML
// conversion, and that documents it accepts survive a Marshal/Parse round
// trip whenever they are marshalable.
func FuzzParseString(f *testing.F) {
	seeds := []string{
		"<a/>",
		"<a><b>text</b></a>",
		`<a id="1"><b/></a>`,
		"<a>&lt;x&gt;</a>",
		"<a><![CDATA[raw]]></a>",
		"<a>",
		"</a>",
		"<a/><b/>",
		"plain text",
		"<a xmlns:x='u'><x:b/></a>",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	allValidNames := func(tr *tree.Tree) bool {
		ok := true
		tr.Walk(func(n *tree.Node) bool {
			if !ValidName(n.Label) {
				ok = false
			}
			return ok
		})
		return ok
	}
	f.Fuzz(func(t *testing.T, input string) {
		for _, opts := range []Options{{}, DefaultOptions(), {IncludeText: true, IncludeAttributes: true}} {
			tr, err := ParseString(input, opts)
			if err != nil {
				continue
			}
			if tr.IsEmpty() {
				t.Fatalf("successful parse of %q produced empty tree", input)
			}
			if err := tr.Validate(); err != nil {
				t.Fatalf("parsed tree invalid for %q: %v", input, err)
			}
			out, err := Marshal(tr)
			if err != nil {
				continue // e.g. labels that are not valid XML names
			}
			tr2, err := ParseString(out, opts)
			if err != nil {
				t.Fatalf("marshaled form %q of %q does not re-parse: %v", out, input, err)
			}
			// Losslessness is guaranteed only on the all-element subset:
			// text leaves merge under XML semantics, attributes reorder.
			if allValidNames(tr) && !tree.Equal(tr, tr2) {
				t.Fatalf("round trip changed all-element tree: %q -> %q", input, out)
			}
		}
	})
}
