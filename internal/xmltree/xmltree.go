// Package xmltree converts XML documents to and from the rooted, ordered,
// labeled trees of this repository. XML is the paper's motivating data
// model: element nesting gives the tree structure, document order gives the
// sibling order, and tag names (plus, optionally, attributes and text
// content) give the labels.
package xmltree

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"

	"treesim/internal/tree"
)

// Options controls how XML constructs map to tree nodes.
type Options struct {
	// IncludeText adds a leaf child per non-whitespace character data run,
	// labeled with the trimmed text. Content-bearing similarity (e.g.
	// catching spelling errors in DBLP records) needs this.
	IncludeText bool
	// IncludeAttributes adds one child per attribute, labeled "@name",
	// with a leaf child holding the value when IncludeText is set.
	IncludeAttributes bool
}

// DefaultOptions includes text but not attributes — the mapping used
// throughout the experiments.
func DefaultOptions() Options { return Options{IncludeText: true} }

// Parse decodes one XML document from r into a tree.
func Parse(r io.Reader, opts Options) (*tree.Tree, error) {
	dec := xml.NewDecoder(r)
	var root *tree.Node
	var stack []*tree.Node
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmltree: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			n := &tree.Node{Label: t.Name.Local}
			if opts.IncludeAttributes {
				for _, a := range t.Attr {
					attr := &tree.Node{Label: "@" + a.Name.Local}
					if opts.IncludeText && a.Value != "" {
						attr.Children = []*tree.Node{{Label: a.Value}}
					}
					n.Children = append(n.Children, attr)
				}
			}
			if len(stack) == 0 {
				if root != nil {
					return nil, fmt.Errorf("xmltree: multiple root elements")
				}
				root = n
			} else {
				p := stack[len(stack)-1]
				p.Children = append(p.Children, n)
			}
			stack = append(stack, n)
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, fmt.Errorf("xmltree: unbalanced end element %q", t.Name.Local)
			}
			stack = stack[:len(stack)-1]
		case xml.CharData:
			if !opts.IncludeText || len(stack) == 0 {
				continue
			}
			text := strings.TrimSpace(string(t))
			if text == "" {
				continue
			}
			p := stack[len(stack)-1]
			p.Children = append(p.Children, &tree.Node{Label: text})
		}
	}
	if root == nil {
		return nil, fmt.Errorf("xmltree: no root element")
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("xmltree: unterminated element %q", stack[len(stack)-1].Label)
	}
	return tree.New(root), nil
}

// ParseString is Parse over a string.
func ParseString(s string, opts Options) (*tree.Tree, error) {
	return Parse(strings.NewReader(s), opts)
}

// MustParseString is ParseString that panics on error, for literals in
// tests and examples.
func MustParseString(s string, opts Options) *tree.Tree {
	t, err := ParseString(s, opts)
	if err != nil {
		panic(err)
	}
	return t
}

// Marshal renders a tree as an XML document. Nodes whose label starts with
// "@" become attributes of their parent (their first child's label is the
// value); leaf nodes whose label is not a valid XML name are rendered as
// text content; all other nodes become elements. Marshal(Parse(x)) is
// structure-preserving for documents produced by this package.
func Marshal(t *tree.Tree) (string, error) {
	if t.IsEmpty() {
		return "", fmt.Errorf("xmltree: cannot marshal the empty tree")
	}
	var sb strings.Builder
	if err := writeElem(&sb, t.Root); err != nil {
		return "", err
	}
	return sb.String(), nil
}

func writeElem(sb *strings.Builder, n *tree.Node) error {
	if !validName(n.Label) {
		return fmt.Errorf("xmltree: label %q is not a valid element name", n.Label)
	}
	sb.WriteByte('<')
	sb.WriteString(n.Label)
	rest := make([]*tree.Node, 0, len(n.Children))
	for _, c := range n.Children {
		if strings.HasPrefix(c.Label, "@") && validName(c.Label[1:]) {
			val := ""
			if len(c.Children) == 1 && c.Children[0].IsLeaf() {
				val = c.Children[0].Label
			}
			fmt.Fprintf(sb, " %s=%q", c.Label[1:], val)
			continue
		}
		rest = append(rest, c)
	}
	if len(rest) == 0 {
		sb.WriteString("/>")
		return nil
	}
	sb.WriteByte('>')
	for _, c := range rest {
		if c.IsLeaf() && !validName(c.Label) {
			xml.EscapeText(sb, []byte(c.Label))
			continue
		}
		if err := writeElem(sb, c); err != nil {
			return err
		}
	}
	sb.WriteString("</")
	sb.WriteString(n.Label)
	sb.WriteByte('>')
	return nil
}

// ValidName reports whether s is usable as an XML element/attribute name
// (conservative ASCII subset). Trees whose every label is a valid name
// marshal losslessly: Parse(Marshal(t)) is structurally equal to t.
// Other labels are rendered as text content (leaves) or attributes, where
// XML's own semantics (adjacent text runs merge into one) can coarsen the
// structure.
func ValidName(s string) bool { return validName(s) }

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case i > 0 && (r >= '0' && r <= '9' || r == '-' || r == '.'):
		default:
			return false
		}
	}
	return true
}
