package xmltree

import (
	"strings"
	"testing"

	"treesim/internal/tree"
)

func TestParseElementsOnly(t *testing.T) {
	doc := `<a><b><c/><d/></b><e/></a>`
	got, err := ParseString(doc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := tree.MustParse("a(b(c,d),e)")
	if !tree.Equal(got, want) {
		t.Errorf("got %s, want %s", got, want)
	}
}

func TestParseWithText(t *testing.T) {
	doc := `<article><author>Jane Doe</author><year>2005</year></article>`
	got, err := ParseString(doc, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	want := tree.MustParse("article(author('Jane Doe'),year(2005))")
	if !tree.Equal(got, want) {
		t.Errorf("got %s, want %s", got, want)
	}
}

func TestParseWhitespaceIgnored(t *testing.T) {
	doc := "<a>\n  <b>x</b>\n  <c/>\n</a>"
	got, err := ParseString(doc, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	want := tree.MustParse("a(b(x),c)")
	if !tree.Equal(got, want) {
		t.Errorf("got %s, want %s", got, want)
	}
}

func TestParseAttributes(t *testing.T) {
	doc := `<a id="7" lang="en"><b ref="x"/></a>`
	got, err := ParseString(doc, Options{IncludeAttributes: true, IncludeText: true})
	if err != nil {
		t.Fatal(err)
	}
	want := tree.MustParse("a('@id'(7),'@lang'(en),b('@ref'(x)))")
	if !tree.Equal(got, want) {
		t.Errorf("got %s, want %s", got, want)
	}
	// Attributes off: they disappear entirely.
	got2, err := ParseString(doc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !tree.Equal(got2, tree.MustParse("a(b)")) {
		t.Errorf("without attributes: %s", got2)
	}
}

func TestParseEntitiesAndCDATA(t *testing.T) {
	doc := `<t>&lt;hello&gt;<![CDATA[ raw & data ]]></t>`
	got, err := ParseString(doc, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// encoding/xml merges adjacent character data per token; expect two
	// text children (entity run, CDATA run) or one merged — accept both
	// by checking the label content.
	labels := got.Root.Children
	joined := ""
	for _, c := range labels {
		joined += c.Label
	}
	if !strings.Contains(joined, "<hello>") || !strings.Contains(joined, "raw & data") {
		t.Errorf("text content lost: %q", joined)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"   ",
		"<a>",
		"<a></b>",
		"<a/><b/>", // multiple roots
		"just text",
	}
	for _, doc := range bad {
		if _, err := ParseString(doc, DefaultOptions()); err == nil {
			t.Errorf("ParseString(%q) unexpectedly succeeded", doc)
		}
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	docs := []string{
		`<a><b><c/><d/></b><e/></a>`,
		`<article><author>Jane Doe</author><year>2005</year></article>`,
		`<x><y>a &amp; b</y></x>`,
	}
	for _, doc := range docs {
		t1, err := ParseString(doc, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		out, err := Marshal(t1)
		if err != nil {
			t.Fatalf("Marshal(%q): %v", doc, err)
		}
		t2, err := ParseString(out, DefaultOptions())
		if err != nil {
			t.Fatalf("re-parse of %q: %v", out, err)
		}
		if !tree.Equal(t1, t2) {
			t.Errorf("round trip changed tree: %q -> %q", doc, out)
		}
	}
}

func TestMarshalAttributes(t *testing.T) {
	tr := tree.MustParse("a('@id'(7),b)")
	out, err := Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `id="7"`) {
		t.Errorf("attribute lost: %q", out)
	}
	back, err := ParseString(out, Options{IncludeAttributes: true, IncludeText: true})
	if err != nil {
		t.Fatal(err)
	}
	if !tree.Equal(tr, back) {
		t.Errorf("attribute round trip: %s vs %s", tr, back)
	}
}

func TestMarshalErrors(t *testing.T) {
	if _, err := Marshal(tree.New(nil)); err == nil {
		t.Error("empty tree marshaled")
	}
	// Root with an invalid element name cannot be marshaled.
	if _, err := Marshal(tree.MustParse("'not a name'(x)")); err == nil {
		t.Error("invalid root name marshaled")
	}
}

func TestMustParseStringPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParseString should panic on bad input")
		}
	}()
	MustParseString("<a>", DefaultOptions())
}
