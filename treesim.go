// Package treesim is a library for similarity evaluation on tree-structured
// data, implementing Yang, Kalnis and Tung, "Similarity Evaluation on
// Tree-structured Data" (SIGMOD 2005).
//
// The core idea: a rooted, ordered, labeled tree is transformed into a
// sparse numeric vector counting its *binary branches* — the one-level
// branch structures of the tree's left-child/right-sibling binary
// representation. The L1 distance of two such vectors (the binary branch
// distance) is computable in O(|T1|+|T2|) and lower-bounds the tree edit
// distance scaled by a constant:
//
//	BDist_q(T1,T2) ≤ [4(q−1)+1] · EDist(T1,T2)
//
// so similarity queries under the (expensive) tree edit distance can run in
// a filter-and-refine loop that prunes most candidates with the cheap
// bound and computes the exact Zhang–Shasha distance only for survivors —
// with exact results guaranteed.
//
// # Quick start
//
//	t1 := treesim.MustParseTree("a(b(c,d),b(c,d),e)")
//	t2 := treesim.MustParseTree("a(b(c,d,b(e)),c,d,e)")
//	d := treesim.EditDistance(t1, t2)                 // 3
//
//	space := treesim.NewBranchSpace(2)
//	p1, p2 := space.Profile(t1), space.Profile(t2)
//	bd := treesim.BDist(p1, p2)                       // 9 → EDist ≥ 2
//
//	ix := treesim.NewIndex(dataset, treesim.NewBiBranchFilter())
//	top5, stats, err := ix.KNN(ctx, query, 5)
//
// See the examples directory for XML search, RNA structure retrieval,
// clustering and similarity joins, and cmd/experiments for the paper's
// full evaluation suite.
package treesim

import (
	"fmt"
	"io"

	"treesim/internal/branch"
	"treesim/internal/datagen"
	"treesim/internal/dataset"
	"treesim/internal/dblp"
	"treesim/internal/editdist"
	"treesim/internal/join"
	"treesim/internal/rna"
	"treesim/internal/search"
	"treesim/internal/tree"
	"treesim/internal/xmltree"
)

// Trees.

// Tree is a rooted, ordered, labeled tree.
type Tree = tree.Tree

// Node is a node of a Tree; children are ordered left to right.
type Node = tree.Node

// NewTree returns a tree rooted at root (nil means the empty tree).
func NewTree(root *Node) *Tree { return tree.New(root) }

// NewNode returns a node with the given label and children.
func NewNode(label string, children ...*Node) *Node { return tree.NewNode(label, children...) }

// ParseTree decodes a tree from the canonical text format, e.g.
// "a(b(c,d),e)"; labels with special characters are single-quoted.
func ParseTree(s string) (*Tree, error) { return tree.Parse(s) }

// MustParseTree is ParseTree that panics on malformed input.
func MustParseTree(s string) *Tree { return tree.MustParse(s) }

// Edit distance.

// CostModel assigns costs to relabel/insert/delete operations.
type CostModel = editdist.CostModel

// UnitCost charges 1 per operation — the paper's model, under which the
// edit distance is a metric.
type UnitCost = editdist.UnitCost

// EditOption configures one EditDistance or EditDistanceWithin call; see
// WithEditCost and WithEditCutoff.
type EditOption = editdist.Option

// EditMetrics reports what one distance computation cost (DP cells,
// pre-check/abort flags); see WithEditMetrics.
type EditMetrics = editdist.Metrics

// WithEditCost sets the cost model of an edit-distance computation (nil
// keeps the paper's unit costs).
func WithEditCost(m CostModel) EditOption { return editdist.WithCost(m) }

// WithEditCutoff bounds an edit-distance computation: the result is exact
// whenever it is ≤ cutoff and otherwise only guaranteed to exceed it.
func WithEditCutoff(cutoff int) EditOption { return editdist.WithCutoff(cutoff) }

// WithEditMetrics directs the computation's cost accounting into *m.
func WithEditMetrics(m *EditMetrics) EditOption { return editdist.WithMetrics(m) }

// EditDistance returns the tree edit distance (Zhang–Shasha), unit-cost by
// default:
//
//	d := treesim.EditDistance(t1, t2)
//	d := treesim.EditDistance(t1, t2, treesim.WithEditCost(c))
func EditDistance(t1, t2 *Tree, opts ...EditOption) int { return editdist.Distance(t1, t2, opts...) }

// EditDistanceWithin decides whether the edit distance is at most cutoff,
// spending as little work as the decision allows (O(n) pre-checks, banded
// DP, early abandoning). It returns the exact distance and true when
// within, or a certified lower bound > cutoff and false when not.
func EditDistanceWithin(t1, t2 *Tree, cutoff int, opts ...EditOption) (int, bool) {
	return editdist.DistanceWithin(t1, t2, cutoff, opts...)
}

// EditDistanceCost returns the tree edit distance under a custom cost
// model.
//
// Deprecated: use EditDistance(t1, t2, WithEditCost(c)).
func EditDistanceCost(t1, t2 *Tree, c CostModel) int { return editdist.DistanceCost(t1, t2, c) }

// ConstrainedEditDistance returns Zhang's constrained edit distance
// (Pattern Recognition 1995): an O(|T1|·|T2|) metric that upper-bounds the
// unrestricted edit distance by restricting mappings so separate subtrees
// map to separate subtrees.
func ConstrainedEditDistance(t1, t2 *Tree) int { return editdist.ConstrainedDistance(t1, t2) }

// Binary branch embedding (the paper's contribution).

// BranchSpace interns the q-level binary branches of a dataset into vector
// dimensions; profiles from one space are mutually comparable.
type BranchSpace = branch.Space

// BranchProfile is a tree's branch vector plus positional information.
type BranchProfile = branch.Profile

// NewBranchSpace returns a branch space at level q ≥ 2 (q = 2 is the
// two-level binary branch of the paper's Definition 2).
func NewBranchSpace(q int) *BranchSpace { return branch.NewSpace(q) }

// BDist returns the binary branch distance — the L1 distance of the branch
// vectors, computed in O(|T1|+|T2|).
func BDist(a, b *BranchProfile) int { return branch.BDist(a, b) }

// BranchFactor returns 4(q−1)+1, the per-operation bound of Theorems
// 3.2/3.3: BDist_q ≤ BranchFactor(q)·EDist.
func BranchFactor(q int) int { return branch.Factor(q) }

// EditLowerBound converts a q-level branch distance into an edit-distance
// lower bound: ceil(bdist/BranchFactor(q)).
func EditLowerBound(bdist, q int) int { return branch.EditLowerBound(bdist, q) }

// PosBDist returns the positional binary branch distance at positional
// range pr (Definition 6): like BDist, but occurrences of a branch match
// only when their preorder and postorder positions are within pr.
func PosBDist(a, b *BranchProfile, pr int) int { return branch.PosBDist(a, b, pr) }

// SearchLBound returns the optimistic positional lower bound on the edit
// distance (Section 4.3) — always at least EditLowerBound(BDist(a,b), q).
func SearchLBound(a, b *BranchProfile) int { return branch.SearchLBound(a, b) }

// Similarity search.

// Index is a similarity-searchable tree collection (filter-and-refine).
type Index = search.Index

// Filter produces edit-distance lower bounds for pruning.
type Filter = search.Filter

// Result is one similarity query answer: dataset position and exact
// distance.
type Result = search.Result

// Stats reports what a query cost (verified count, filter/refine time).
type Stats = search.Stats

// Explain is the per-query filter-quality analysis (see WithExplain).
type Explain = search.Explain

// IndexOption configures NewIndex and LoadIndex; see WithFilter,
// WithCostModel, WithBoundedRefine, WithShards, WithRefineWorkers,
// WithMemtableSize and WithCompactionThreshold. Concrete filter values
// returned by the New*Filter constructors are themselves IndexOptions.
type IndexOption = search.IndexOption

// QueryOption configures one KNN or Range call; see WithExplain.
type QueryOption = search.QueryOption

// NewIndex preprocesses a dataset once and returns a queryable index:
//
//	ix := treesim.NewIndex(ts, treesim.NewBiBranchFilter())
//	res, stats, err := ix.KNN(ctx, q, 5)
//
// With no filter option the index degenerates to the sequential scan;
// with no cost option it uses unit edit costs. WithShards and
// WithRefineWorkers shape intra-query parallelism — they never change
// results.
func NewIndex(ts []*Tree, opts ...IndexOption) *Index { return search.NewIndex(ts, opts...) }

// NewIndexCost is NewIndex with a custom refine cost model.
//
// Deprecated: use NewIndex(ts, WithFilter(f), WithCostModel(c)).
func NewIndexCost(ts []*Tree, f Filter, c CostModel) *Index {
	return search.NewIndexCost(ts, f, c)
}

// WithFilter selects the index's filter (nil means sequential scan).
func WithFilter(f Filter) IndexOption { return search.WithFilter(f) }

// WithCostModel sets the refine stage's edit cost model; filtering
// remains exact as long as every operation costs at least 1.
func WithCostModel(m CostModel) IndexOption { return search.WithCostModel(m) }

// WithBoundedRefine selects threshold-bounded verification in the refine
// stage (the default): exact distances are computed only as far as the
// live cutoff requires. Results are identical either way; pass false to
// force full verification.
func WithBoundedRefine(enabled bool) IndexOption { return search.WithBoundedRefine(enabled) }

// WithShards sets how many dataset shards a query's filter stage fans out
// over (0 = GOMAXPROCS, 1 = sequential). Results are shard-invariant.
func WithShards(s int) IndexOption { return search.WithShards(s) }

// WithRefineWorkers bounds the index-wide pool of helper goroutines that
// queries parallelize over (0 = GOMAXPROCS).
func WithRefineWorkers(n int) IndexOption { return search.WithRefineWorkers(n) }

// WithMemtableSize sets how many inserted trees the mutable memtable
// segment absorbs before it is sealed into an immutable segment
// (0 = default). Layout never changes results — only write amplification
// and per-query segment fan-out.
func WithMemtableSize(n int) IndexOption { return search.WithMemtableSize(n) }

// WithCompactionThreshold sets how many sealed segments accumulate before
// a background compaction merges them into one (0 = default, negative =
// never compact automatically; Compact still works).
func WithCompactionThreshold(n int) IndexOption { return search.WithCompactionThreshold(n) }

// WithExplain asks a query to produce its filter-quality analysis into
// *dst (set only on success).
func WithExplain(dst **Explain) QueryOption { return search.WithExplain(dst) }

// BiBranchFilter is the paper's filter: q-level binary branch vectors
// with, optionally, the positional lower bound.
type BiBranchFilter = search.BiBranch

// HistoFilter is the histogram filtration baseline of Kailing et al.
type HistoFilter = search.Histo

// SeqFilter is the sequence lower bound baseline of Guha et al.
type SeqFilter = search.Seq

// NoFilter disables filtering (sequential scan).
type NoFilter = search.None

// PivotFilter is the pivot-cascade variant of the BiBranch filter.
type PivotFilter = search.PivotBiBranch

// VPTreeFilter is the BiBranch filter with a vantage-point tree.
type VPTreeFilter = search.VPBiBranch

// NewBiBranchFilter returns the paper's filter: two-level binary branches
// with the positional optimistic bound.
func NewBiBranchFilter() *BiBranchFilter { return search.NewBiBranch() }

// NewBiBranchFilterQ returns a binary branch filter at level q ≥ 2,
// optionally without the positional bound (plain ceil(BDist/factor)
// filtering). It panics when q < 2: no binary branch structure of fewer
// than two levels exists (Definition 2), and deferring the check used to
// surface as a confusing failure deep inside index construction.
func NewBiBranchFilterQ(q int, positional bool) *BiBranchFilter {
	if q < 2 {
		panic(fmt.Sprintf("treesim: binary branch level q must be >= 2 (got %d)", q))
	}
	return &search.BiBranch{Q: q, Positional: positional}
}

// NewHistoFilter returns the histogram filtration baseline of Kailing et
// al. with the paper's equal-space sizing.
func NewHistoFilter() *HistoFilter { return search.NewHisto() }

// NewSeqFilter returns the preorder/postorder sequence lower bound filter
// of Guha et al. (quadratic per pair; included as a baseline).
func NewSeqFilter() *SeqFilter { return search.NewSeq() }

// NewNoFilter disables filtering (sequential scan).
func NewNoFilter() *NoFilter { return search.NewNone() }

// NewPivotFilter returns the pivot-cascade variant of the BiBranch filter:
// precomputed distances to a few pivot trees give an O(#pivots) stage-one
// bound per candidate (via BDist's triangle inequality) before the full
// positional bound runs.
func NewPivotFilter() *PivotFilter { return search.NewPivotBiBranch() }

// NewVPTreeFilter returns the BiBranch filter with a vantage-point tree
// over the BDist pseudometric: range queries enumerate a sound candidate
// ball without touching every indexed vector.
func NewVPTreeFilter() *VPTreeFilter { return search.NewVPBiBranch() }

// Similarity joins.

// JoinPair is one result of a similarity join.
type JoinPair = join.Pair

// JoinStats reports a join's pruning statistics.
type JoinStats = join.Stats

// JoinOptions tunes a similarity join.
type JoinOptions = join.Options

// SelfJoin returns every unordered pair of trees within edit distance tau,
// filter-and-refine accelerated and exact.
func SelfJoin(ts []*Tree, tau int, opts JoinOptions) ([]JoinPair, JoinStats) {
	return join.SelfJoin(ts, tau, opts)
}

// SimilarityJoin returns every pair (r ∈ rs, s ∈ ss) within edit distance
// tau.
func SimilarityJoin(rs, ss []*Tree, tau int, opts JoinOptions) ([]JoinPair, JoinStats) {
	return join.Join(rs, ss, tau, opts)
}

// Data sources.

// GeneratorSpec describes the paper's synthetic tree generator, e.g.
// parsed from "N{4,0.5}N{50,2}L8D0.05".
type GeneratorSpec = datagen.Spec

// ParseGeneratorSpec parses the paper's dataset notation.
func ParseGeneratorSpec(s string) (GeneratorSpec, error) { return datagen.ParseSpec(s) }

// GenerateDataset produces n synthetic trees from the spec using the given
// number of seed trees (mutation chains) and random seed.
func GenerateDataset(spec GeneratorSpec, n, seeds int, seed int64) []*Tree {
	return datagen.New(spec, seed).Dataset(n, seeds)
}

// GenerateDBLP produces n DBLP-like bibliographic record trees.
func GenerateDBLP(n int, seed int64) []*Tree { return dblp.New(seed).Dataset(n) }

// XMLOptions controls XML→tree conversion.
type XMLOptions = xmltree.Options

// ParseXML converts one XML document into a tree.
func ParseXML(r io.Reader, opts XMLOptions) (*Tree, error) { return xmltree.Parse(r, opts) }

// ParseXMLString converts an XML string into a tree.
func ParseXMLString(s string, opts XMLOptions) (*Tree, error) {
	return xmltree.ParseString(s, opts)
}

// DefaultXMLOptions includes element text as leaf labels.
func DefaultXMLOptions() XMLOptions { return xmltree.DefaultOptions() }

// RNAMolecule is an RNA sequence with dot-bracket secondary structure; its
// Tree method yields the structure tree used for similarity search.
type RNAMolecule = rna.Molecule

// Datasets and indexes on disk.

// SaveDataset writes trees in the native line format.
func SaveDataset(w io.Writer, ts []*Tree) error { return dataset.Save(w, ts) }

// LoadDataset reads trees in the native line format.
func LoadDataset(r io.Reader) ([]*Tree, error) { return dataset.Load(r) }

// SaveIndex serializes a BiBranch-filtered index (dataset plus pre-built
// branch vectors) so it can be reloaded without re-profiling.
func SaveIndex(w io.Writer, ix *Index) error { return search.SaveIndex(w, ix) }

// LoadIndex reloads an index saved with SaveIndex. Options configure the
// loaded index like NewIndex's do.
func LoadIndex(r io.Reader, opts ...IndexOption) (*Index, error) {
	return search.LoadIndex(r, opts...)
}

// Edit scripts.

// EditOp is one step of an optimal edit script.
type EditOp = editdist.Op

// EditScriptResult is an optimal edit script: the minimum-cost operation
// sequence transforming one tree into another, with the underlying Tai
// mapping.
type EditScriptResult = editdist.Script

// EditScript backtraces the Zhang–Shasha dynamic program into an optimal
// unit-cost edit script from t1 to t2; its Cost equals EditDistance(t1,t2).
func EditScript(t1, t2 *Tree) *EditScriptResult { return editdist.EditScript(t1, t2) }
