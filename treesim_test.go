package treesim

import (
	"context"
	"strings"
	"testing"
)

// TestFacadeQuickstart exercises the public API end to end, mirroring the
// package documentation example.
func TestFacadeQuickstart(t *testing.T) {
	t1 := MustParseTree("a(b(c,d),b(c,d),e)")
	t2 := MustParseTree("a(b(c,d,b(e)),c,d,e)")

	if d := EditDistance(t1, t2); d != 3 {
		t.Errorf("EditDistance = %d, want 3", d)
	}

	space := NewBranchSpace(2)
	p1, p2 := space.Profile(t1), space.Profile(t2)
	if bd := BDist(p1, p2); bd != 9 {
		t.Errorf("BDist = %d, want 9", bd)
	}
	if lb := EditLowerBound(9, 2); lb != 2 {
		t.Errorf("EditLowerBound = %d, want 2", lb)
	}
	if f := BranchFactor(3); f != 9 {
		t.Errorf("BranchFactor(3) = %d, want 9", f)
	}
	if lb := SearchLBound(p1, p2); lb != 2 {
		t.Errorf("SearchLBound = %d, want 2", lb)
	}
	if pd := PosBDist(p1, p2, 1); pd != 11 {
		t.Errorf("PosBDist(1) = %d, want 11", pd)
	}
}

func TestFacadeSearch(t *testing.T) {
	spec, err := ParseGeneratorSpec("N{3,0.5}N{20,2}L6D0.05")
	if err != nil {
		t.Fatal(err)
	}
	data := GenerateDataset(spec, 100, 10, 7)
	for _, f := range []Filter{
		NewBiBranchFilter(), NewBiBranchFilterQ(3, false),
		NewHistoFilter(), NewSeqFilter(), NewNoFilter(), nil,
	} {
		ix := NewIndex(data, WithFilter(f))
		res, stats, _ := ix.KNN(context.Background(), data[5], 3)
		if len(res) != 3 || res[0].Dist != 0 {
			t.Fatalf("KNN broken under %T: %v", f, res)
		}
		if stats.Dataset != 100 {
			t.Fatalf("stats broken: %+v", stats)
		}
		rres, _, _ := ix.Range(context.Background(), data[5], 2)
		if len(rres) == 0 || rres[0].Dist != 0 {
			t.Fatalf("Range broken under %T: %v", f, rres)
		}
	}
}

func TestFacadeXML(t *testing.T) {
	tr, err := ParseXMLString("<a><b>hi</b></a>", DefaultXMLOptions())
	if err != nil {
		t.Fatal(err)
	}
	if tr.Size() != 3 {
		t.Errorf("XML tree size %d, want 3", tr.Size())
	}
	tr2, err := ParseXML(strings.NewReader("<a><b>hi</b></a>"), DefaultXMLOptions())
	if err != nil || tr2.Size() != 3 {
		t.Errorf("ParseXML: %v, %v", tr2, err)
	}
}

func TestFacadeIndexCost(t *testing.T) {
	spec, _ := ParseGeneratorSpec("N{3,0.5}N{12,2}L5D0.1")
	data := GenerateDataset(spec, 25, 5, 12)
	ix := NewIndexCost(data, NewBiBranchFilter(), UnitCost{})
	res, _, _ := ix.KNN(context.Background(), data[3], 2)
	if len(res) != 2 || res[0].Dist != 0 {
		t.Fatalf("NewIndexCost KNN: %v", res)
	}
}

func TestFacadeRNA(t *testing.T) {
	m := RNAMolecule{Sequence: "GAAAC", Structure: "(...)"}
	tr, err := m.Tree()
	if err != nil {
		t.Fatal(err)
	}
	if tr.Size() != 5 { // root + pair + 3 loop bases
		t.Errorf("RNA tree size %d, want 5", tr.Size())
	}
}

func TestFacadeDatasetIO(t *testing.T) {
	data := GenerateDBLP(10, 3)
	var sb strings.Builder
	if err := SaveDataset(&sb, data); err != nil {
		t.Fatal(err)
	}
	back, err := LoadDataset(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 10 {
		t.Errorf("loaded %d trees", len(back))
	}
}

func TestFacadeCostModel(t *testing.T) {
	t1 := MustParseTree("a(b)")
	t2 := MustParseTree("a(c)")
	if d := EditDistanceCost(t1, t2, UnitCost{}); d != 1 {
		t.Errorf("unit cost distance = %d", d)
	}
}

func TestFacadeAdvancedFilters(t *testing.T) {
	spec, _ := ParseGeneratorSpec("N{3,0.5}N{18,2}L6D0.05")
	data := GenerateDataset(spec, 80, 8, 9)
	base := NewIndex(data, NewNoFilter())
	for _, f := range []Filter{NewPivotFilter(), NewVPTreeFilter()} {
		ix := NewIndex(data, WithFilter(f))
		wantR, _, _ := base.Range(context.Background(), data[7], 3)
		gotR, _, _ := ix.Range(context.Background(), data[7], 3)
		if len(gotR) != len(wantR) {
			t.Fatalf("%T: range results differ", f)
		}
	}
}

func TestFacadeJoin(t *testing.T) {
	spec, _ := ParseGeneratorSpec("N{3,0.5}N{12,2}L5D0.1")
	data := GenerateDataset(spec, 40, 5, 10)
	pairs, stats := SelfJoin(data, 2, JoinOptions{})
	if stats.Results != len(pairs) || stats.Pairs != 40*39/2 {
		t.Fatalf("join stats inconsistent: %+v", stats)
	}
	cross, _ := SimilarityJoin(data[:20], data[20:], 2, JoinOptions{})
	for _, p := range cross {
		if d := EditDistance(data[p.R], data[20+p.S]); d != p.Dist {
			t.Fatalf("cross join pair (%d,%d) distance %d, recomputed %d", p.R, p.S, p.Dist, d)
		}
	}
}

func TestFacadeEditScriptAndConstrained(t *testing.T) {
	t1 := MustParseTree("a(b(c,d),b(c,d),e)")
	t2 := MustParseTree("a(b(c,d,b(e)),c,d,e)")
	s := EditScript(t1, t2)
	if s.Cost != 3 {
		t.Errorf("script cost %d, want 3", s.Cost)
	}
	if cd := ConstrainedEditDistance(t1, t2); cd < 3 {
		t.Errorf("constrained distance %d undercuts edit distance 3", cd)
	}
}

func TestFacadeIndexPersistenceAndInsert(t *testing.T) {
	spec, _ := ParseGeneratorSpec("N{3,0.5}N{15,2}L5D0.1")
	data := GenerateDataset(spec, 30, 5, 11)
	ix := NewIndex(data, NewBiBranchFilter())

	var sb strings.Builder
	if err := SaveIndex(&sb, ix); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadIndex(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Size() != 30 {
		t.Fatalf("loaded %d trees", loaded.Size())
	}
	novel := MustParseTree("q(w(e),r,t(y))")
	id, err := loaded.Insert(novel)
	if err != nil {
		t.Fatal(err)
	}
	res, _, _ := loaded.KNN(context.Background(), novel, 1)
	if len(res) != 1 || res[0].ID != id || res[0].Dist != 0 {
		t.Fatalf("inserted tree not retrievable: %v", res)
	}
}

func TestFacadeTreeConstruction(t *testing.T) {
	tr := NewTree(NewNode("a", NewNode("b"), NewNode("c")))
	if tr.Size() != 3 || tr.String() != "a(b,c)" {
		t.Errorf("constructed tree: %s", tr)
	}
	if _, err := ParseTree("a("); err == nil {
		t.Error("ParseTree accepted malformed input")
	}
}

// TestBiBranchFilterQValidation: levels below the proven minimum q=2 are a
// construction-time panic, not a silently-wrong filter (the scaling factor
// 4(q-1)+1 degenerates for q < 2 and the bound would be unsound).
func TestBiBranchFilterQValidation(t *testing.T) {
	for _, q := range []int{1, 0, -3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewBiBranchFilterQ(%d, true) did not panic", q)
				}
			}()
			NewBiBranchFilterQ(q, true)
		}()
	}
	if f := NewBiBranchFilterQ(2, true); f == nil {
		t.Fatal("NewBiBranchFilterQ(2) rejected a valid level")
	}
}

// TestFacadeOptions: the functional-options surface reaches the engine —
// shard and worker settings apply, WithExplain fills its destination, and
// results match the default configuration.
func TestFacadeOptions(t *testing.T) {
	spec, _ := ParseGeneratorSpec("N{3,0.5}N{14,2}L5D0.1")
	data := GenerateDataset(spec, 40, 5, 17)
	plain := NewIndex(data, NewBiBranchFilter())
	sharded := NewIndex(data, NewBiBranchFilter(), WithShards(5), WithRefineWorkers(4))

	ctx := context.Background()
	want, _, err := plain.KNN(ctx, data[8], 4)
	if err != nil {
		t.Fatal(err)
	}
	var ex *Explain
	got, _, err := sharded.KNN(ctx, data[8], 4, WithExplain(&ex))
	if err != nil {
		t.Fatal(err)
	}
	if ex == nil || ex.Op != "knn" {
		t.Fatalf("explain not produced: %+v", ex)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("sharded KNN diverged: %v vs %v", got, want)
		}
	}
}
